//! Seeded mutants: intentionally broken systems the explorer must catch.
//!
//! Each entry comes in a correct/mutant pair built from the same harness,
//! differing in exactly one line of protocol logic. The correct variant
//! must survive every explored schedule; the mutant must be caught within
//! the CI budget. Together they validate the whole checking layer: a
//! checker that catches no mutants is decoration, one that flags correct
//! systems is noise.
//!
//! World-side mutants (kernel scheduling):
//!
//! - **flood-merge** — knowledge flooding over a path graph. Correct
//!   actors *union* incoming origin sets into their own (gossip's origin
//!   merge); the mutant *overwrites*, forgetting what it knew — under
//!   churning delivery orders some origin is permanently lost.
//! - **commit-race** — a two-phase-commit sketch where the prepare for
//!   one participant travels through two relays. The correct coordinator
//!   commits after *both* acks; the mutant commits after the *first*,
//!   opening a same-instant race between `Prepare` and `Commit` at the
//!   far participant that only an adversarial tie-break exposes — the
//!   default schedule passes.
//!
//! Register-side mutants (harness scheduling): the `write_back: false`
//! ablations of the t+1 responsive and 2t+1 majority constructions,
//! whose new/old inversions the statistical sweeps only find by luck.

use dds_core::process::ProcessId;
use dds_core::spec::register::RegOp;
use dds_core::time::{Time, TimeDelta};
use dds_net::graph::Graph;
use dds_registers::base::ObjectState;
use dds_registers::construction::Construction;
use dds_registers::harness::CrashEvent;
use dds_sim::actor::{Actor, Context};
use dds_sim::delay::DelayModel;
use dds_sim::world::{World, WorldBuilder};

use crate::target::{RegisterTarget, Target, Violation, WorldTarget};

/// One suite entry: a target and whether exploration must find a
/// violation (mutants) or must not (correct variants).
pub struct Subject {
    /// The system under check.
    pub target: Box<dyn Target>,
    /// `true` for mutants: a violation must be found within budget.
    pub expect_violation: bool,
}

/// The full validation suite, correct/mutant pairs interleaved.
pub fn suite() -> Vec<Subject> {
    vec![
        Subject {
            target: Box::new(flood_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(flood_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(race_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(race_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(responsive_register_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(responsive_register_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(majority_register_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(majority_register_target(false)),
            expect_violation: true,
        },
    ]
}

// ---------------------------------------------------------------------------
// flood-merge: knowledge flooding with (or without) the origin merge.
// ---------------------------------------------------------------------------

/// Floods a bitmask of known process identities. `merge_union` is the
/// gossip origin merge; without it, an incoming set *replaces* what the
/// process knew (keeping only its own bit).
struct Flood {
    known: u64,
    merge_union: bool,
}

impl Actor<u64> for Flood {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.known = 1 << ctx.pid().as_raw();
        ctx.set_timer(TimeDelta::TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _: dds_sim::event::TimerId) {
        ctx.broadcast(self.known);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, mask: u64) {
        let merged = if self.merge_union {
            self.known | mask
        } else {
            mask | (1 << ctx.pid().as_raw())
        };
        if merged != self.known {
            self.known = merged;
            ctx.broadcast(self.known);
        }
    }
}

/// Path graph of 3; the middle process hears from both ends at the same
/// instant, so delivery order decides what an overwriting merge forgets.
fn flood_target(merge_union: bool) -> WorldTarget<u64> {
    let name = if merge_union {
        "flood-merge/correct"
    } else {
        "flood-merge/mutant"
    };
    WorldTarget::new(
        name,
        Time::from_ticks(30),
        move || {
            WorldBuilder::new(11)
                .initial_graph(dds_net::generate::path(3))
                .delay(DelayModel::Fixed(TimeDelta::TICK))
                .spawn(move |_| {
                    Box::new(Flood {
                        known: 0,
                        merge_union,
                    })
                })
                .build()
        },
        |world: &World<u64>| {
            let all: u64 = world
                .members()
                .iter()
                .map(|p| 1u64 << p.as_raw())
                .fold(0, |a, b| a | b);
            for &pid in world.members() {
                let known = world.actor::<Flood>(pid).expect("flood actor").known;
                if known != all {
                    return Err(Violation {
                        reason: format!("process {pid} lost origins"),
                        details: format!("knows {known:#b}, expected {all:#b}"),
                    });
                }
            }
            Ok(())
        },
    )
    .with_reduction()
}

// ---------------------------------------------------------------------------
// commit-race: commit must not overtake a relayed prepare.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RaceMsg {
    Prepare,
    /// Prepare for the far participant, hopping through the relays.
    PrepForward,
    Ack,
    Commit,
}

/// p0: sends `Prepare` to p1 directly and via two relays (p3→p4) to p2;
/// commits after both acks (correct) or after the first (mutant).
struct Coordinator {
    acks: usize,
    wait_for_all: bool,
}

impl Actor<RaceMsg> for Coordinator {
    fn on_start(&mut self, ctx: &mut Context<'_, RaceMsg>) {
        ctx.send(ProcessId::from_raw(3), RaceMsg::PrepForward);
        ctx.send(ProcessId::from_raw(1), RaceMsg::Prepare);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, RaceMsg>, _: ProcessId, msg: RaceMsg) {
        if msg == RaceMsg::Ack {
            self.acks += 1;
            let quorum = if self.wait_for_all { 2 } else { 1 };
            if self.acks == quorum {
                ctx.send(ProcessId::from_raw(1), RaceMsg::Commit);
                ctx.send(ProcessId::from_raw(2), RaceMsg::Commit);
            }
        }
    }
}

/// p1 and p2: ack the prepare; flag a commit that arrives unprepared.
#[derive(Default)]
struct Participant {
    prepared: bool,
    commit_before_prepare: bool,
}

impl Actor<RaceMsg> for Participant {
    fn on_message(&mut self, ctx: &mut Context<'_, RaceMsg>, _: ProcessId, msg: RaceMsg) {
        match msg {
            RaceMsg::Prepare => {
                self.prepared = true;
                ctx.send(ProcessId::from_raw(0), RaceMsg::Ack);
            }
            RaceMsg::Commit if !self.prepared => self.commit_before_prepare = true,
            _ => {}
        }
    }
}

/// p3 and p4: forward `PrepForward` one hop (p3 → p4 → p2).
struct Relay {
    next: ProcessId,
    delivers: RaceMsg,
}

impl Actor<RaceMsg> for Relay {
    fn on_message(&mut self, ctx: &mut Context<'_, RaceMsg>, _: ProcessId, msg: RaceMsg) {
        if msg == RaceMsg::PrepForward {
            ctx.send(self.next, self.delivers);
        }
    }
}

fn race_target(wait_for_all: bool) -> WorldTarget<RaceMsg> {
    let name = if wait_for_all {
        "commit-race/correct"
    } else {
        "commit-race/mutant"
    };
    WorldTarget::new(
        name,
        Time::from_ticks(20),
        move || {
            let mut g = Graph::new();
            for i in 0..5 {
                g.add_node(ProcessId::from_raw(i));
            }
            for (a, b) in [(0, 1), (0, 2), (0, 3), (3, 4), (4, 2)] {
                g.add_edge(ProcessId::from_raw(a), ProcessId::from_raw(b));
            }
            WorldBuilder::new(17)
                .initial_graph(g)
                .delay(DelayModel::Fixed(TimeDelta::TICK))
                .spawn(move |pid| match pid.as_raw() {
                    0 => Box::new(Coordinator {
                        acks: 0,
                        wait_for_all,
                    }),
                    1 | 2 => Box::new(Participant::default()) as Box<dyn Actor<RaceMsg>>,
                    3 => Box::new(Relay {
                        next: ProcessId::from_raw(4),
                        delivers: RaceMsg::PrepForward,
                    }),
                    _ => Box::new(Relay {
                        next: ProcessId::from_raw(2),
                        delivers: RaceMsg::Prepare,
                    }),
                })
                .build()
        },
        |world: &World<RaceMsg>| {
            for pid in [1, 2] {
                let p = world
                    .actor::<Participant>(ProcessId::from_raw(pid))
                    .expect("participant");
                if p.commit_before_prepare {
                    return Err(Violation {
                        reason: format!("participant {pid} committed before preparing"),
                        details: "Commit overtook the relayed Prepare".into(),
                    });
                }
            }
            Ok(())
        },
    )
    .with_reduction()
}

// ---------------------------------------------------------------------------
// register mutants: the write-back ablations.
// ---------------------------------------------------------------------------

/// The t+1 responsive construction; without write-back a reader that
/// observed a concurrent write does not propagate it, so a later reader
/// can see the older value — a new/old inversion.
fn responsive_register_target(write_back: bool) -> RegisterTarget {
    let name = if write_back {
        "register-responsive/correct"
    } else {
        "register-responsive/mutant"
    };
    RegisterTarget::new(
        name,
        Construction::ResponsiveAll { write_back },
        2,
        vec![
            vec![RegOp::Write(1), RegOp::Write(2), RegOp::Write(3)],
            vec![RegOp::Read; 3],
            vec![RegOp::Read; 3],
        ],
        vec![CrashEvent {
            step: 6,
            index: 0,
            state: ObjectState::CrashedResponsive,
        }],
        0,
    )
}

/// The 2t+1 majority construction; without the read write-back two
/// quorum reads can straddle an in-flight write.
fn majority_register_target(write_back: bool) -> RegisterTarget {
    let name = if write_back {
        "register-majority/correct"
    } else {
        "register-majority/mutant"
    };
    RegisterTarget::new(
        name,
        Construction::MajorityQuorum { write_back },
        1,
        vec![
            vec![RegOp::Write(1), RegOp::Write(2), RegOp::Write(3)],
            vec![RegOp::Read; 3],
            vec![RegOp::Read; 3],
        ],
        vec![],
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Budget};
    use crate::fuzz::fuzz;

    fn budget() -> Budget {
        Budget {
            max_runs: 2000,
            max_depth: 48,
            max_preemptions: 2,
        }
    }

    #[test]
    fn correct_flood_survives_exploration() {
        let out = explore(&mut flood_target(true), budget());
        assert!(out.counterexample.is_none(), "{:?}", out.counterexample);
    }

    #[test]
    fn sleep_sets_prune_without_losing_exhaustion() {
        // The same bounded space, with and without the reduction: both
        // must exhaust (no violation either way), the reduced walk in
        // strictly fewer runs — commutative delivery orders are skipped,
        // not lost.
        let with = explore(&mut flood_target(true), budget());
        let mut plain = flood_target(true);
        plain.disable_reduction();
        let without = explore(&mut plain, budget());
        assert!(with.exhausted && without.exhausted);
        assert!(without.counterexample.is_none());
        assert!(
            with.runs < without.runs,
            "reduction must prune: with={} without={}",
            with.runs,
            without.runs
        );
    }

    #[test]
    fn mutant_flood_is_caught() {
        let out = explore(&mut flood_target(false), budget());
        let ce = out.counterexample.expect("overwrite merge must lose origins");
        assert!(ce.preemptions <= 2);
    }

    #[test]
    fn correct_race_survives_exploration() {
        let out = explore(&mut race_target(true), budget());
        assert!(out.counterexample.is_none(), "{:?}", out.counterexample);
    }

    #[test]
    fn mutant_race_is_caught_and_needs_a_deviation() {
        // The default schedule passes: the race only fires under an
        // adversarial same-instant tie-break.
        let report = race_target(false).run(&[]);
        assert!(
            report.violation.is_none(),
            "default order must mask the race: {:?}",
            report.violation
        );
        let out = explore(&mut race_target(false), budget());
        let ce = out.counterexample.expect("explorer must expose the race");
        assert!(ce.preemptions >= 1, "needs a non-default decision");
    }

    #[test]
    fn register_mutants_are_caught_and_correct_ones_survive() {
        for (mk, caught) in [
            (responsive_register_target as fn(bool) -> RegisterTarget, true),
            (majority_register_target, true),
        ] {
            let correct_out = explore(&mut mk(true), budget());
            assert!(
                correct_out.counterexample.is_none(),
                "correct construction flagged: {:?}",
                correct_out.counterexample
            );
            let mut mutant = mk(false);
            let mut found = explore(&mut mutant, budget()).counterexample.is_some();
            if !found {
                found = fuzz(&mut mutant, 1, 300, 64).counterexample.is_some();
            }
            assert_eq!(found, caught, "write-back mutant must be caught");
        }
    }
}
