//! Seeded mutants: intentionally broken systems the explorer must catch.
//!
//! Each entry comes in a correct/mutant pair built from the same harness,
//! differing in exactly one line of protocol logic. The correct variant
//! must survive every explored schedule; the mutant must be caught within
//! the CI budget. Together they validate the whole checking layer: a
//! checker that catches no mutants is decoration, one that flags correct
//! systems is noise.
//!
//! World-side mutants (kernel scheduling):
//!
//! - **flood-merge** — knowledge flooding over a path graph. Correct
//!   actors *union* incoming origin sets into their own (gossip's origin
//!   merge); the mutant *overwrites*, forgetting what it knew — under
//!   churning delivery orders some origin is permanently lost.
//! - **commit-race** — a two-phase-commit sketch where the prepare for
//!   one participant travels through two relays. The correct coordinator
//!   commits after *both* acks; the mutant commits after the *first*,
//!   opening a same-instant race between `Prepare` and `Commit` at the
//!   far participant that only an adversarial tie-break exposes — the
//!   default schedule passes.
//!
//! Register-side mutants (harness scheduling): the `write_back: false`
//! ablations of the t+1 responsive and 2t+1 majority constructions,
//! whose new/old inversions the statistical sweeps only find by luck.
//!
//! Storage-side mutants (`dds-store`, the quorum-replicated service):
//!
//! - **store-writeback** — a reader that skips the phase-2 write-back
//!   answers from a value seen on a minority; a later read can then miss
//!   it entirely (stale quorum read / new/old inversion).
//! - **store-fencing** — replicas that keep serving epochs they have
//!   promised away let a write complete against a configuration whose
//!   state was already migrated, so the write vanishes from the new
//!   epoch — a lost update the atomicity checker flags.

use dds_core::process::ProcessId;
use dds_core::spec::register::{check_atomic, RegOp};
use dds_core::time::{Time, TimeDelta};
use dds_net::graph::Graph;
use dds_registers::base::ObjectState;
use dds_registers::construction::Construction;
use dds_registers::harness::CrashEvent;
use dds_sim::actor::{Actor, Context};
use dds_sim::delay::{DelayModel, LossModel};
use dds_sim::world::{World, WorldBuilder};
use dds_store::{history_from_store, StoreActor, StoreMsg, StoreParams};

use crate::target::{RegisterTarget, Target, Violation, WorldTarget};

/// World seed of the write-back mutant scenario, chosen (by scanning
/// seeds) so the delay draws of the *default* schedule already interleave
/// the write between the two reads — the explorer then shrinks the
/// witness to zero decisions, and plan perturbations cover the
/// neighborhood.
const STORE_WRITEBACK_SEED: u64 = 161;

/// One suite entry: a target and whether exploration must find a
/// violation (mutants) or must not (correct variants).
pub struct Subject {
    /// The system under check.
    pub target: Box<dyn Target>,
    /// `true` for mutants: a violation must be found within budget.
    pub expect_violation: bool,
}

/// The full validation suite, correct/mutant pairs interleaved.
pub fn suite() -> Vec<Subject> {
    vec![
        Subject {
            target: Box::new(flood_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(flood_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(race_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(race_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(responsive_register_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(responsive_register_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(majority_register_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(majority_register_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(store_writeback_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(store_writeback_target(false)),
            expect_violation: true,
        },
        Subject {
            target: Box::new(store_fencing_target(true)),
            expect_violation: false,
        },
        Subject {
            target: Box::new(store_fencing_target(false)),
            expect_violation: true,
        },
    ]
}

// ---------------------------------------------------------------------------
// flood-merge: knowledge flooding with (or without) the origin merge.
// ---------------------------------------------------------------------------

/// Floods a bitmask of known process identities. `merge_union` is the
/// gossip origin merge; without it, an incoming set *replaces* what the
/// process knew (keeping only its own bit).
struct Flood {
    known: u64,
    merge_union: bool,
}

impl Actor<u64> for Flood {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.known = 1 << ctx.pid().as_raw();
        ctx.set_timer(TimeDelta::TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _: dds_sim::event::TimerId) {
        ctx.broadcast(self.known);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: ProcessId, mask: u64) {
        let merged = if self.merge_union {
            self.known | mask
        } else {
            mask | (1 << ctx.pid().as_raw())
        };
        if merged != self.known {
            self.known = merged;
            ctx.broadcast(self.known);
        }
    }
}

/// Path graph of 3; the middle process hears from both ends at the same
/// instant, so delivery order decides what an overwriting merge forgets.
fn flood_target(merge_union: bool) -> WorldTarget<u64> {
    let name = if merge_union {
        "flood-merge/correct"
    } else {
        "flood-merge/mutant"
    };
    WorldTarget::new(
        name,
        Time::from_ticks(30),
        move || {
            WorldBuilder::new(11)
                .initial_graph(dds_net::generate::path(3))
                .delay(DelayModel::Fixed(TimeDelta::TICK))
                .spawn(move |_| {
                    Box::new(Flood {
                        known: 0,
                        merge_union,
                    })
                })
                .build()
        },
        |world: &World<u64>| {
            let all: u64 = world
                .members()
                .iter()
                .map(|p| 1u64 << p.as_raw())
                .fold(0, |a, b| a | b);
            for &pid in world.members() {
                let known = world.actor::<Flood>(pid).expect("flood actor").known;
                if known != all {
                    return Err(Violation {
                        reason: format!("process {pid} lost origins"),
                        details: format!("knows {known:#b}, expected {all:#b}"),
                    });
                }
            }
            Ok(())
        },
    )
    .with_reduction()
}

// ---------------------------------------------------------------------------
// commit-race: commit must not overtake a relayed prepare.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RaceMsg {
    Prepare,
    /// Prepare for the far participant, hopping through the relays.
    PrepForward,
    Ack,
    Commit,
}

/// p0: sends `Prepare` to p1 directly and via two relays (p3→p4) to p2;
/// commits after both acks (correct) or after the first (mutant).
struct Coordinator {
    acks: usize,
    wait_for_all: bool,
}

impl Actor<RaceMsg> for Coordinator {
    fn on_start(&mut self, ctx: &mut Context<'_, RaceMsg>) {
        ctx.send(ProcessId::from_raw(3), RaceMsg::PrepForward);
        ctx.send(ProcessId::from_raw(1), RaceMsg::Prepare);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, RaceMsg>, _: ProcessId, msg: RaceMsg) {
        if msg == RaceMsg::Ack {
            self.acks += 1;
            let quorum = if self.wait_for_all { 2 } else { 1 };
            if self.acks == quorum {
                ctx.send(ProcessId::from_raw(1), RaceMsg::Commit);
                ctx.send(ProcessId::from_raw(2), RaceMsg::Commit);
            }
        }
    }
}

/// p1 and p2: ack the prepare; flag a commit that arrives unprepared.
#[derive(Default)]
struct Participant {
    prepared: bool,
    commit_before_prepare: bool,
}

impl Actor<RaceMsg> for Participant {
    fn on_message(&mut self, ctx: &mut Context<'_, RaceMsg>, _: ProcessId, msg: RaceMsg) {
        match msg {
            RaceMsg::Prepare => {
                self.prepared = true;
                ctx.send(ProcessId::from_raw(0), RaceMsg::Ack);
            }
            RaceMsg::Commit if !self.prepared => self.commit_before_prepare = true,
            _ => {}
        }
    }
}

/// p3 and p4: forward `PrepForward` one hop (p3 → p4 → p2).
struct Relay {
    next: ProcessId,
    delivers: RaceMsg,
}

impl Actor<RaceMsg> for Relay {
    fn on_message(&mut self, ctx: &mut Context<'_, RaceMsg>, _: ProcessId, msg: RaceMsg) {
        if msg == RaceMsg::PrepForward {
            ctx.send(self.next, self.delivers);
        }
    }
}

fn race_target(wait_for_all: bool) -> WorldTarget<RaceMsg> {
    let name = if wait_for_all {
        "commit-race/correct"
    } else {
        "commit-race/mutant"
    };
    WorldTarget::new(
        name,
        Time::from_ticks(20),
        move || {
            let mut g = Graph::new();
            for i in 0..5 {
                g.add_node(ProcessId::from_raw(i));
            }
            for (a, b) in [(0, 1), (0, 2), (0, 3), (3, 4), (4, 2)] {
                g.add_edge(ProcessId::from_raw(a), ProcessId::from_raw(b));
            }
            WorldBuilder::new(17)
                .initial_graph(g)
                .delay(DelayModel::Fixed(TimeDelta::TICK))
                .spawn(move |pid| match pid.as_raw() {
                    0 => Box::new(Coordinator {
                        acks: 0,
                        wait_for_all,
                    }),
                    1 | 2 => Box::new(Participant::default()) as Box<dyn Actor<RaceMsg>>,
                    3 => Box::new(Relay {
                        next: ProcessId::from_raw(4),
                        delivers: RaceMsg::PrepForward,
                    }),
                    _ => Box::new(Relay {
                        next: ProcessId::from_raw(2),
                        delivers: RaceMsg::Prepare,
                    }),
                })
                .build()
        },
        |world: &World<RaceMsg>| {
            for pid in [1, 2] {
                let p = world
                    .actor::<Participant>(ProcessId::from_raw(pid))
                    .expect("participant");
                if p.commit_before_prepare {
                    return Err(Violation {
                        reason: format!("participant {pid} committed before preparing"),
                        details: "Commit overtook the relayed Prepare".into(),
                    });
                }
            }
            Ok(())
        },
    )
    .with_reduction()
}

// ---------------------------------------------------------------------------
// register mutants: the write-back ablations.
// ---------------------------------------------------------------------------

/// The t+1 responsive construction; without write-back a reader that
/// observed a concurrent write does not propagate it, so a later reader
/// can see the older value — a new/old inversion.
fn responsive_register_target(write_back: bool) -> RegisterTarget {
    let name = if write_back {
        "register-responsive/correct"
    } else {
        "register-responsive/mutant"
    };
    RegisterTarget::new(
        name,
        Construction::ResponsiveAll { write_back },
        2,
        vec![
            vec![RegOp::Write(1), RegOp::Write(2), RegOp::Write(3)],
            vec![RegOp::Read; 3],
            vec![RegOp::Read; 3],
        ],
        vec![CrashEvent {
            step: 6,
            index: 0,
            state: ObjectState::CrashedResponsive,
        }],
        0,
    )
}

/// The 2t+1 majority construction; without the read write-back two
/// quorum reads can straddle an in-flight write.
fn majority_register_target(write_back: bool) -> RegisterTarget {
    let name = if write_back {
        "register-majority/correct"
    } else {
        "register-majority/mutant"
    };
    RegisterTarget::new(
        name,
        Construction::MajorityQuorum { write_back },
        1,
        vec![
            vec![RegOp::Write(1), RegOp::Write(2), RegOp::Write(3)],
            vec![RegOp::Read; 3],
            vec![RegOp::Read; 3],
        ],
        vec![],
        0,
    )
}

// ---------------------------------------------------------------------------
// store mutants: write-back and epoch-fencing ablations of dds-store.
// ---------------------------------------------------------------------------

/// Checks a finished store world: the clients' history must be atomic.
fn check_store_history(
    world: &World<StoreMsg>,
    clients: &[ProcessId],
) -> Result<(), Violation> {
    let history = history_from_store(world, clients.iter().copied());
    match check_atomic(&history) {
        Ok(lin) if lin.is_linearizable() => Ok(()),
        Ok(_) => Err(Violation {
            reason: "store history is not linearizable".into(),
            details: format!("{} ops from {} clients", history.len(), clients.len()),
        }),
        Err(e) => Err(Violation {
            reason: "store history rejected by the checker".into(),
            details: format!("{e:?}"),
        }),
    }
}

/// ABD read write-back ablation. One writer and one reader race over a
/// 3-replica register under jittery delays: without the phase-2
/// write-back the first read can answer from a minority that already saw
/// the in-flight write while the second read's quorum misses it — the
/// value appears, then vanishes. The world seed is chosen so the default
/// schedule exhibits the race; the explorer's plan perturbations reshuffle
/// the delay draws for the rest of the space.
fn store_writeback_target(write_back: bool) -> WorldTarget<StoreMsg> {
    let name = if write_back {
        "store-writeback/correct"
    } else {
        "store-writeback/mutant"
    };
    WorldTarget::new(
        name,
        Time::from_ticks(90),
        move || store_writeback_world(STORE_WRITEBACK_SEED, write_back),
        |world: &World<StoreMsg>| {
            check_store_history(
                world,
                &[ProcessId::from_raw(WB_WRITER), ProcessId::from_raw(WB_READER)],
            )
        },
    )
    .with_reduction()
}

const WB_WRITER: u64 = 3;
const WB_READER: u64 = 4;

fn store_writeback_world(seed: u64, write_back: bool) -> World<StoreMsg> {
    let params = StoreParams {
        initial: (0..3).map(ProcessId::from_raw).collect(),
        replica_count: 3,
        write_back,
        epoch_fencing: true,
        probe_every: None,
        op_timeout: TimeDelta::ticks(30),
        max_attempts: 4,
        view_delta: TimeDelta::ticks(1_000),
        ..StoreParams::default()
    };
    // Loss opens the inversion window: a `Store` wave that reaches only
    // one replica leaves the write pending and visible to exactly the
    // quorums that include that replica.
    let mut world = WorldBuilder::new(seed)
        .initial_graph(dds_net::generate::complete(5))
        .delay(DelayModel::Uniform {
            min: TimeDelta::ticks(1),
            max: TimeDelta::ticks(6),
        })
        .loss(LossModel::Bernoulli(0.25))
        .spawn(move |_| Box::new(StoreActor::new(params.clone())))
        .build();
    let w = ProcessId::from_raw(WB_WRITER);
    let r = ProcessId::from_raw(WB_READER);
    // The reads land in the window where a lossy `Store` wave has reached
    // some replicas but not others; the second read starts only after the
    // first completes, so an inversion is a real-time violation.
    world.inject(Time::from_ticks(1), w, StoreMsg::Invoke(RegOp::Write(1)));
    world.inject(Time::from_ticks(12), r, StoreMsg::Invoke(RegOp::Read));
    world.inject(Time::from_ticks(24), r, StoreMsg::Invoke(RegOp::Read));
    world
}

/// Epoch-fencing ablation. A write races a reconfiguration that migrates
/// the register to a disjoint replica set: with fencing the old replicas
/// NACK the write's phase 2 (they promised the new epoch when they
/// answered the fenced snapshot read) and the write retries against the
/// new configuration; without it they happily ack, the write "completes"
/// into a decommissioned epoch, and a later read through the new
/// configuration returns the migrated — older — value. Deterministic
/// (fixed delays): the mutant loses the update on the default schedule.
fn store_fencing_target(epoch_fencing: bool) -> WorldTarget<StoreMsg> {
    let name = if epoch_fencing {
        "store-fencing/correct"
    } else {
        "store-fencing/mutant"
    };
    const WRITER: u64 = 6;
    const READER: u64 = 7;
    WorldTarget::new(
        name,
        Time::from_ticks(70),
        move || {
            let params = StoreParams {
                initial: (0..3).map(ProcessId::from_raw).collect(),
                replica_count: 3,
                write_back: true,
                epoch_fencing,
                probe_every: None,
                op_timeout: TimeDelta::ticks(12),
                max_attempts: 6,
                view_delta: TimeDelta::ticks(25),
                ..StoreParams::default()
            };
            let mut world = WorldBuilder::new(23)
                .initial_graph(dds_net::generate::complete(8))
                .delay(DelayModel::Fixed(TimeDelta::TICK))
                .spawn(move |_| Box::new(StoreActor::new(params.clone())))
                .build();
            let w = ProcessId::from_raw(WRITER);
            let r = ProcessId::from_raw(READER);
            world.inject(Time::from_ticks(1), w, StoreMsg::Invoke(RegOp::Write(1)));
            world.inject(Time::from_ticks(17), w, StoreMsg::Invoke(RegOp::Write(2)));
            world.inject(
                Time::from_ticks(18),
                ProcessId::from_raw(0),
                StoreMsg::Reconfigure {
                    members: (3..6).map(ProcessId::from_raw).collect(),
                },
            );
            world.inject(Time::from_ticks(45), r, StoreMsg::Invoke(RegOp::Read));
            world
        },
        |world: &World<StoreMsg>| {
            check_store_history(
                world,
                &[ProcessId::from_raw(WRITER), ProcessId::from_raw(READER)],
            )
        },
    )
    .with_reduction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Budget};
    use crate::fuzz::fuzz;

    fn budget() -> Budget {
        Budget {
            max_runs: 2000,
            max_depth: 48,
            max_preemptions: 2,
        }
    }

    #[test]
    fn correct_flood_survives_exploration() {
        let out = explore(&mut flood_target(true), budget());
        assert!(out.counterexample.is_none(), "{:?}", out.counterexample);
    }

    #[test]
    fn sleep_sets_prune_without_losing_exhaustion() {
        // The same bounded space, with and without the reduction: both
        // must exhaust (no violation either way), the reduced walk in
        // strictly fewer runs — commutative delivery orders are skipped,
        // not lost.
        let with = explore(&mut flood_target(true), budget());
        let mut plain = flood_target(true);
        plain.disable_reduction();
        let without = explore(&mut plain, budget());
        assert!(with.exhausted && without.exhausted);
        assert!(without.counterexample.is_none());
        assert!(
            with.runs < without.runs,
            "reduction must prune: with={} without={}",
            with.runs,
            without.runs
        );
    }

    #[test]
    fn mutant_flood_is_caught() {
        let out = explore(&mut flood_target(false), budget());
        let ce = out.counterexample.expect("overwrite merge must lose origins");
        assert!(ce.preemptions <= 2);
    }

    #[test]
    fn correct_race_survives_exploration() {
        let out = explore(&mut race_target(true), budget());
        assert!(out.counterexample.is_none(), "{:?}", out.counterexample);
    }

    #[test]
    fn mutant_race_is_caught_and_needs_a_deviation() {
        // The default schedule passes: the race only fires under an
        // adversarial same-instant tie-break.
        let report = race_target(false).run(&[]);
        assert!(
            report.violation.is_none(),
            "default order must mask the race: {:?}",
            report.violation
        );
        let out = explore(&mut race_target(false), budget());
        let ce = out.counterexample.expect("explorer must expose the race");
        assert!(ce.preemptions >= 1, "needs a non-default decision");
    }

    #[test]
    #[ignore = "offline seed scan for STORE_WRITEBACK_SEED"]
    fn scan_writeback_seeds() {
        for seed in 0..2000u64 {
            let mut world = store_writeback_world(seed, false);
            world.run_until(Time::from_ticks(90));
            let bad = check_store_history(
                &world,
                &[ProcessId::from_raw(WB_WRITER), ProcessId::from_raw(WB_READER)],
            )
            .is_err();
            if bad {
                println!("seed {seed} violates on the default schedule");
                return;
            }
        }
        panic!("no violating seed in range");
    }

    #[test]
    fn store_writeback_mutant_is_caught_and_correct_survives() {
        let correct = explore(&mut store_writeback_target(true), budget());
        assert!(
            correct.counterexample.is_none(),
            "write-back store flagged: {:?}",
            correct.counterexample
        );
        let mut mutant = store_writeback_target(false);
        let mut ce = explore(&mut mutant, budget()).counterexample;
        if ce.is_none() {
            ce = fuzz(&mut mutant, 1, 300, 64).counterexample;
        }
        let ce = ce.expect("skipping the read write-back must be caught");
        assert!(
            ce.plan.len() <= 20,
            "witness must shrink to <= 20 decisions, got {}",
            ce.plan.len()
        );
    }

    #[test]
    fn store_fencing_mutant_is_caught_and_correct_survives() {
        let correct = explore(&mut store_fencing_target(true), budget());
        assert!(
            correct.counterexample.is_none(),
            "fenced store flagged: {:?}",
            correct.counterexample
        );
        let out = explore(&mut store_fencing_target(false), budget());
        let ce = out
            .counterexample
            .expect("unfenced epochs must lose the racing write");
        assert!(
            ce.plan.len() <= 20,
            "witness must shrink to <= 20 decisions, got {}",
            ce.plan.len()
        );
    }

    #[test]
    fn register_mutants_are_caught_and_correct_ones_survive() {
        for (mk, caught) in [
            (responsive_register_target as fn(bool) -> RegisterTarget, true),
            (majority_register_target, true),
        ] {
            let correct_out = explore(&mut mk(true), budget());
            assert!(
                correct_out.counterexample.is_none(),
                "correct construction flagged: {:?}",
                correct_out.counterexample
            );
            let mut mutant = mk(false);
            let mut found = explore(&mut mutant, budget()).counterexample.is_some();
            if !found {
                found = fuzz(&mut mutant, 1, 300, 64).counterexample.is_some();
            }
            assert_eq!(found, caught, "write-back mutant must be caught");
        }
    }
}
