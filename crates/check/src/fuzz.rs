//! Randomized schedule fuzzing with seeded replay, and a delta-debugging
//! shrinker that minimizes failing decision vectors.
//!
//! The fuzzer complements the bounded explorer: where the explorer is
//! exhaustive near the default schedule, the fuzzer samples deep into the
//! space, far beyond any preemption bound. Every attempt is a pure
//! function of its seed, and a failure is reported as the *resolved*
//! decision vector (what the run actually chose), so replaying the plan —
//! on any machine, at any thread count — reproduces the failure exactly.

use dds_core::rng::Rng;

use crate::target::{Counterexample, Target};

/// Widest random decision drawn per choice point. Plans are clamped to
/// the live width at replay, so this only shapes the sampling bias.
const DECISION_RANGE: u64 = 4;

/// What a fuzzing campaign produced.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Target runs consumed (shrinking included).
    pub runs: usize,
    /// First failure found, already shrunk.
    pub counterexample: Option<Counterexample>,
    /// Seed of the failing attempt.
    pub failing_seed: Option<u64>,
}

/// Runs `attempts` random schedules derived from `base_seed`, shrinking
/// and returning the first failure.
///
/// Attempt `i` uses seed `base_seed + i`; its plan is `plan_len` decisions
/// drawn uniformly from `0..DECISION_RANGE` (clamped to the live width at
/// each choice point). On failure the resolved plan is shrunk with
/// [`shrink`] before being returned.
pub fn fuzz(
    target: &mut dyn Target,
    base_seed: u64,
    attempts: usize,
    plan_len: usize,
) -> FuzzOutcome {
    let mut runs = 0usize;
    for i in 0..attempts {
        let seed = base_seed.wrapping_add(i as u64);
        let mut rng = Rng::seeded(seed);
        let plan: Vec<usize> = (0..plan_len)
            .map(|_| rng.below(DECISION_RANGE) as usize)
            .collect();
        let report = target.run(&plan);
        runs += 1;
        if let Some(violation) = report.violation.clone() {
            let resolved = report.plan();
            let (minimal, shrink_runs) = shrink(target, &resolved, 4 * resolved.len() + 64);
            runs += shrink_runs;
            // Re-derive the violation from the minimal plan so the report
            // matches what replaying it shows.
            let final_violation = target
                .run(&minimal)
                .violation
                .unwrap_or(violation);
            runs += 1;
            return FuzzOutcome {
                runs,
                counterexample: Some(Counterexample::new(&minimal, final_violation)),
                failing_seed: Some(seed),
            };
        }
    }
    FuzzOutcome {
        runs,
        counterexample: None,
        failing_seed: None,
    }
}

/// Delta-debugging minimization: zero out non-default decisions of a
/// failing plan while the failure persists, until 1-minimal (no single
/// remaining non-default decision can be defaulted) or the run budget is
/// spent. Returns the minimized plan and the runs consumed.
///
/// The plan must fail when passed in; the returned plan fails too.
pub fn shrink(target: &mut dyn Target, plan: &[usize], max_runs: usize) -> (Vec<usize>, usize) {
    let mut current: Vec<usize> = plan.to_vec();
    while current.last() == Some(&0) {
        current.pop();
    }
    let mut runs = 0usize;
    let mut fails = |candidate: &[usize], runs: &mut usize| -> bool {
        *runs += 1;
        target.run(candidate).violation.is_some()
    };

    // Coarse-to-fine: try zeroing runs of non-default decisions, halving
    // the chunk size until single decisions, stopping at 1-minimality.
    let mut chunk = current
        .iter()
        .filter(|&&d| d != 0)
        .count()
        .div_ceil(2)
        .max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() && runs < max_runs {
            let group: Vec<usize> = current
                .iter()
                .enumerate()
                .filter_map(|(i, &d)| (d != 0 && i >= start).then_some(i))
                .take(chunk)
                .collect();
            let Some(&last) = group.last() else { break };
            let mut candidate = current.clone();
            for &i in &group {
                candidate[i] = 0;
            }
            if fails(&candidate, &mut runs) {
                current = candidate;
                progressed = true;
            }
            start = last + 1;
        }
        if runs >= max_runs || (!progressed && chunk == 1) {
            break;
        }
        if !progressed {
            chunk /= 2;
        }
    }
    while current.last() == Some(&0) {
        current.pop();
    }
    (current, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ChoicePoint;
    use crate::target::{RunReport, Violation};
    use std::path::Path;

    /// Fails whenever decisions at the `trigger` positions are all
    /// non-default — a bug needing exactly those preemptions.
    struct TriggerTarget {
        widths: Vec<usize>,
        trigger: Vec<usize>,
    }

    impl Target for TriggerTarget {
        fn name(&self) -> &str {
            "trigger"
        }

        fn run(&mut self, plan: &[usize]) -> RunReport {
            let resolved: Vec<usize> = self
                .widths
                .iter()
                .enumerate()
                .map(|(k, &w)| plan.get(k).copied().unwrap_or(0).min(w - 1))
                .collect();
            let fired = self.trigger.iter().all(|&k| resolved[k] != 0);
            RunReport {
                choices: self
                    .widths
                    .iter()
                    .zip(&resolved)
                    .map(|(&width, &chosen)| ChoicePoint {
                        at: dds_core::time::Time::ZERO,
                        epoch: 0,
                        width,
                        chosen,
                        ready: Vec::new(),
                    })
                    .collect(),
                violation: fired.then(|| Violation {
                    reason: "trigger".into(),
                    details: String::new(),
                }),
            }
        }

        fn dump_counterexample(&mut self, _: &[usize], _: &Path, _: &str) {}
    }

    #[test]
    fn fuzz_finds_and_shrinks_to_the_trigger() {
        let mut t = TriggerTarget {
            widths: vec![2; 24],
            trigger: vec![3, 17],
        };
        let out = fuzz(&mut t, 1, 400, 24);
        let ce = out.counterexample.expect("a random plan must hit 2 bits");
        assert!(out.failing_seed.is_some());
        // Shrunk to exactly the two triggering decisions.
        assert_eq!(ce.preemptions, 2);
        assert_eq!(ce.plan.len(), 18, "trailing defaults trimmed");
        assert_eq!(ce.plan[3], 1);
        assert_eq!(ce.plan[17], 1);
    }

    #[test]
    fn fuzz_is_deterministic_in_the_base_seed() {
        let run = || {
            let mut t = TriggerTarget {
                widths: vec![2; 16],
                trigger: vec![2, 9],
            };
            let out = fuzz(&mut t, 7, 200, 16);
            (
                out.failing_seed,
                out.counterexample.map(|c| c.plan),
                out.runs,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shrink_handles_an_always_failing_plan() {
        struct AlwaysFails;
        impl Target for AlwaysFails {
            fn name(&self) -> &str {
                "always"
            }
            fn run(&mut self, plan: &[usize]) -> RunReport {
                RunReport {
                    choices: plan
                        .iter()
                        .map(|&chosen| ChoicePoint {
                            at: dds_core::time::Time::ZERO,
                            epoch: 0,
                            width: 4,
                            chosen,
                            ready: Vec::new(),
                        })
                        .collect(),
                    violation: Some(Violation {
                        reason: "always".into(),
                        details: String::new(),
                    }),
                }
            }
            fn dump_counterexample(&mut self, _: &[usize], _: &Path, _: &str) {}
        }
        let (minimal, _) = shrink(&mut AlwaysFails, &[3, 1, 2, 0, 1], 100);
        assert!(minimal.is_empty(), "everything defaults away");
    }
}
