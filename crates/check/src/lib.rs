//! Schedule exploration and linearizability checking for the simulator
//! and the register harness.
//!
//! The statistical sweeps in `dds-bench` sample random schedules; this
//! crate hunts the *adversarial* ones. It drives two kinds of systems
//! under controlled nondeterminism, both exposed behind one [`Target`]
//! abstraction — "run me under this decision vector, tell me what choice
//! points you saw and whether the property held":
//!
//! - **Kernel worlds** ([`WorldTarget`]): a [`dds_sim::world::World`] with
//!   a [`ScriptPolicy`] installed, which resolves every same-instant tie
//!   from an explicit plan and logs the ready set at each choice point.
//! - **Register schedules** ([`RegisterTarget`]): the `dds-registers`
//!   interleaving harness in planned mode
//!   ([`dds_registers::harness::run_schedule_planned`]), its history
//!   judged by the Wing–Gong checker in `dds_core::spec::register`.
//!
//! On top of [`Target`] sit three engines:
//!
//! - [`explore::explore`] — bounded exhaustive DFS over decision vectors
//!   with preemption/depth/run budgets and a sleep-set partial-order
//!   reduction for commutative same-instant deliveries to distinct actors.
//! - [`fuzz::fuzz`] — a seeded randomized schedule fuzzer whose failures
//!   replay deterministically from `(seed, plan)`.
//! - [`fuzz::shrink`] — a delta-debugging pass that minimizes a failing
//!   decision vector to a short witness (few non-default decisions).
//!
//! Counterexamples are dumped as JSONL through the `dds-obs`
//! [`FlightRecorder`](dds_obs::FlightRecorder), so a failing schedule
//! leaves the same artifact an in-flight spec failure would.
//!
//! The crate validates itself with **seeded mutants** ([`mutants`]):
//! intentionally broken systems (a register construction that skips
//! write-back, gossip-style relaying that forgets the origin merge, a
//! coordinator that commits after the first ack) that the explorer must
//! catch within the CI budget — see the `run_check` binary in
//! `crates/bench`.

#![warn(missing_docs)]

pub mod explore;
pub mod fuzz;
pub mod mutants;
pub mod schedule;
pub mod target;

pub use explore::{
    configured_explore_mode, explore, explore_fork, explore_parallel, explore_parallel_with,
    explore_replay, Budget, ExploreMode, Explored, ProgressSample, PROGRESS_INTERVAL,
};
pub use fuzz::{fuzz, shrink, FuzzOutcome};
pub use schedule::{ChoicePoint, ReadyEvent, ScriptPolicy};
pub use target::{
    Counterexample, ExploreSession, RegisterTarget, RunReport, SessionState, StabTarget, Target,
    Violation, WorldTarget,
};
