//! The scripted schedule policy and its choice-point log.

use std::cell::RefCell;
use std::rc::Rc;

use dds_core::process::ProcessId;
use dds_core::time::Time;
use dds_sim::event::{ReadySummary, SchedulePolicy};

/// One ready event at a choice point, reduced to what exploration needs:
/// its identity (`seq`) and the actor it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEvent {
    /// The kernel's tie-breaking sequence number — stable across replays
    /// of the same decision prefix, so it identifies the event.
    pub seq: u64,
    /// The process the event dispatches to (`None` for churn ticks, which
    /// touch the whole world).
    pub target: Option<ProcessId>,
}

impl ReadyEvent {
    /// Commutativity approximation: two events are independent when they
    /// dispatch to *distinct* actors. Actor states are disjoint and a
    /// queued event cannot be disabled by delivering to a different
    /// process, so swapping them reaches the same state — provided the
    /// callbacks don't race through shared world state (the mutation
    /// `epoch` guards membership/topology; callbacks drawing from the
    /// shared rng are outside the approximation, so partial-order
    /// reduction is opt-in per target).
    pub fn independent(&self, other: &ReadyEvent) -> bool {
        match (self.target, other.target) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// One entry of a run's schedule log.
///
/// `width > 1` entries are genuine choice points (the policy was asked to
/// pick); `width == 1` entries are forced steps, logged so explorers can
/// wake sleeping events that a forced step conflicts with.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    /// Dispatch instant.
    pub at: Time,
    /// World mutation epoch at the decision.
    pub epoch: u64,
    /// Size of the ready set (1 for forced steps).
    pub width: usize,
    /// Index dispatched (always 0 for forced steps).
    pub chosen: usize,
    /// The ready set in seq order. Empty when the target only reports
    /// widths (register schedules), which disables the reduction.
    pub ready: Vec<ReadyEvent>,
}

impl ChoicePoint {
    /// The event that was dispatched, when the ready set is known.
    pub fn executed(&self) -> Option<ReadyEvent> {
        self.ready.get(self.chosen).copied()
    }
}

/// Shared log the policy writes and the explorer reads back after a run.
pub type ChoiceLog = Rc<RefCell<Vec<ChoicePoint>>>;

/// A [`SchedulePolicy`] that replays an explicit decision vector.
///
/// `plan[k]` is the index to dispatch at the `k`-th choice point (where
/// the ready set holds more than one event); out-of-range entries are
/// clamped, missing entries mean "pick index 0", i.e. the empty plan
/// reproduces the default `(time, seq)` order. Every consulted choice
/// point — and every forced single-event step — is appended to the log.
pub struct ScriptPolicy {
    plan: Vec<usize>,
    cursor: usize,
    log: ChoiceLog,
}

impl ScriptPolicy {
    /// Creates a policy replaying `plan`, logging into `log`.
    pub fn new(plan: Vec<usize>, log: ChoiceLog) -> Self {
        ScriptPolicy {
            plan,
            cursor: 0,
            log,
        }
    }
}

pub(crate) fn summarize(ready: &[ReadySummary]) -> Vec<ReadyEvent> {
    ready
        .iter()
        .map(|r| ReadyEvent {
            seq: r.seq,
            target: r.kind.target(),
        })
        .collect()
}

impl SchedulePolicy for ScriptPolicy {
    fn choose(&mut self, now: Time, epoch: u64, ready: &[ReadySummary]) -> usize {
        let choice = self
            .plan
            .get(self.cursor)
            .copied()
            .unwrap_or(0)
            .min(ready.len() - 1);
        self.cursor += 1;
        self.log.borrow_mut().push(ChoicePoint {
            at: now,
            epoch,
            width: ready.len(),
            chosen: choice,
            ready: summarize(ready),
        });
        choice
    }

    fn observe(&mut self, now: Time, epoch: u64, only: &ReadySummary) {
        self.log.borrow_mut().push(ChoicePoint {
            at: now,
            epoch,
            width: 1,
            chosen: 0,
            ready: summarize(std::slice::from_ref(only)),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_sim::event::ReadyKind;

    fn summary(seq: u64, pid: u64) -> ReadySummary {
        ReadySummary {
            seq,
            kind: ReadyKind::Timer {
                pid: ProcessId::from_raw(pid),
            },
        }
    }

    #[test]
    fn plan_entries_clamp_and_default_to_zero() {
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        let mut p = ScriptPolicy::new(vec![1, 99], Rc::clone(&log));
        let ready = [summary(10, 0), summary(11, 1)];
        assert_eq!(p.choose(Time::from_ticks(1), 0, &ready), 1);
        assert_eq!(p.choose(Time::from_ticks(1), 0, &ready), 1, "99 clamps");
        assert_eq!(p.choose(Time::from_ticks(2), 0, &ready), 0, "plan exhausted");
        let log = log.borrow();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].width, 2);
        assert_eq!(log[0].ready[1].target, Some(ProcessId::from_raw(1)));
    }

    #[test]
    fn forced_steps_are_logged_with_width_one() {
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        let mut p = ScriptPolicy::new(vec![], Rc::clone(&log));
        p.observe(Time::from_ticks(3), 7, &summary(42, 5));
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].width, 1);
        assert_eq!(log[0].epoch, 7);
        assert_eq!(log[0].executed().unwrap().seq, 42);
    }

    #[test]
    fn independence_is_distinct_targets() {
        let a = ReadyEvent {
            seq: 1,
            target: Some(ProcessId::from_raw(0)),
        };
        let b = ReadyEvent {
            seq: 2,
            target: Some(ProcessId::from_raw(1)),
        };
        let churn = ReadyEvent { seq: 3, target: None };
        assert!(a.independent(&b));
        assert!(!a.independent(&a));
        assert!(!a.independent(&churn), "churn conflicts with everything");
    }
}
