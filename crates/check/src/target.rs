//! The system-under-check abstraction and its two implementations.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use dds_core::spec::register::{check_atomic, RegOp};
use dds_core::time::Time;
use dds_obs::{CausalLog, FlightRecorder, ObsEvent, Sink};
use dds_registers::construction::Construction;
use dds_registers::harness::{run_schedule_planned, CrashEvent};
use dds_sim::snapshot::{fingerprint_msg, FingerprintMsg, StableHasher};
use dds_sim::world::World;

use crate::schedule::{summarize, ChoiceLog, ChoicePoint, ReadyEvent, ScriptPolicy};

/// Final-state property over a finished world. `Rc` so the target and the
/// exploration sessions it spawns can share one closure.
type WorldCheck<M> = Rc<dyn Fn(&World<M>) -> Result<(), Violation>>;

/// A property failure observed in one run.
#[derive(Debug, Clone)]
pub struct Violation {
    /// One-line description of what broke.
    pub reason: String,
    /// Supporting evidence (e.g. the rendered history).
    pub details: String,
}

/// What one run under a fixed decision vector produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The schedule log: forced steps (`width == 1`) and genuine choice
    /// points (`width > 1`), in execution order.
    pub choices: Vec<ChoicePoint>,
    /// The property verdict.
    pub violation: Option<Violation>,
}

impl RunReport {
    /// The decision vector that reproduces this run: one entry per
    /// genuine choice point.
    pub fn plan(&self) -> Vec<usize> {
        self.choices
            .iter()
            .filter(|c| c.width > 1)
            .map(|c| c.chosen)
            .collect()
    }

    /// Number of genuine choice points.
    pub fn decisions(&self) -> usize {
        self.choices.iter().filter(|c| c.width > 1).count()
    }
}

/// A minimized failing schedule, ready to be replayed or reported.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The decision vector that reproduces the failure (trailing defaults
    /// trimmed).
    pub plan: Vec<usize>,
    /// Number of non-default decisions in `plan`.
    pub preemptions: usize,
    /// What broke.
    pub violation: Violation,
}

impl Counterexample {
    pub(crate) fn new(plan: &[usize], violation: Violation) -> Self {
        let mut plan = plan.to_vec();
        while plan.last() == Some(&0) {
            plan.pop();
        }
        let preemptions = plan.iter().filter(|&&d| d != 0).count();
        Counterexample {
            plan,
            preemptions,
            violation,
        }
    }
}

/// A system that can be run under an explicit decision vector.
///
/// `plan[k]` picks among the ready alternatives at the `k`-th genuine
/// choice point; entries are clamped and missing entries mean "default
/// order", so every `plan` is legal and the empty plan is the unmodified
/// system. Runs must be deterministic functions of the plan.
pub trait Target {
    /// Short identifier for reports.
    fn name(&self) -> &str;

    /// Runs the system once under `plan`.
    fn run(&mut self, plan: &[usize]) -> RunReport;

    /// Whether the partial-order reduction may be applied: only sound
    /// when the target reports ready sets and its actor callbacks do not
    /// race through the shared rng (see
    /// [`crate::schedule::ReadyEvent::independent`]).
    fn reduction_safe(&self) -> bool {
        false
    }

    /// Opens an incremental exploration session over a fresh run, or
    /// `None` (the default) when the target only supports whole-run
    /// replay. A `Some` return promises that [`ExploreSession::fork`]
    /// works on the initial state: the explorer forks at choice points
    /// instead of replaying decision prefixes, and falls back to
    /// [`Target::run`] when this returns `None`.
    fn session(&mut self) -> Option<Box<dyn ExploreSession>> {
        None
    }

    /// Replays `plan` and dumps the run's event history as JSONL to
    /// `path` through a [`FlightRecorder`].
    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str);

    /// Replays `plan` with a [`dds_obs::CausalLog`] installed and writes
    /// the minimal happened-before chain explaining the witness — the
    /// cause chain of the critical path's end event — as JSONL next to
    /// the flight-recorder dump. Event ids are assigned unconditionally
    /// by the kernel, so the chain's ids match the flight dump's; the
    /// root's `cause` may reference a spawn-time event that predates sink
    /// installation (like the flight dump, observation starts after the
    /// world is built). Default: no-op, for targets without kernel event
    /// ids (register histories, synthetic trees).
    fn dump_causal_chain(&mut self, _plan: &[usize], _path: &Path, _reason: &str) {}
}

/// Where an exploration session stopped after [`ExploreSession::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Stopped at a genuine choice point (ready width > 1); inspect it
    /// with [`ExploreSession::choice`] and resolve it with
    /// [`ExploreSession::choose`].
    Choice,
    /// The run completed (deadline reached or queue drained); judge it
    /// with [`ExploreSession::violation`].
    Done,
}

/// One live run that an explorer steers decision by decision.
///
/// The session semantics mirror the replay path exactly: forced steps
/// (ready width 1) dispatch in default `(time, seq)` order, genuine
/// choice points surface to the caller, and a run judged at `Done` must
/// equal the [`Target::run`] verdict for the same decision vector.
pub trait ExploreSession {
    /// Runs forward until the next genuine choice point or completion,
    /// returning where it stopped and the forced (width-1) steps executed
    /// along the way, in order — the explorer's sleep sets need them.
    fn advance(&mut self) -> (SessionState, Vec<ReadyEvent>);

    /// The pending choice point (with `chosen` still 0), when stopped at
    /// [`SessionState::Choice`].
    fn choice(&self) -> Option<ChoicePoint>;

    /// Resolves the pending choice point by dispatching the `idx`-th
    /// ready event (clamped like a replay plan entry).
    fn choose(&mut self, idx: usize);

    /// Snapshots the session into an independent copy that will follow
    /// the exact same future for the same decisions, or `None` when some
    /// component does not support forking.
    fn fork(&self) -> Option<Box<dyn ExploreSession>>;

    /// Canonical fingerprint of the current state for deduplication, or
    /// `None` when some component opts out (exploration still works,
    /// duplicate states are just re-explored).
    fn fingerprint(&self) -> Option<u64>;

    /// The property verdict over the current state — meaningful once
    /// [`SessionState::Done`] is reached.
    fn violation(&self) -> Option<Violation>;
}

/// A [`Target`] wrapping a simulator world: build it, run it under a
/// scripted schedule until `deadline`, then check a property over the
/// final state.
pub struct WorldTarget<M> {
    name: String,
    build: Box<dyn FnMut() -> World<M>>,
    check: WorldCheck<M>,
    deadline: Time,
    reduction_safe: bool,
    /// Message fingerprint hook; `Some` (via [`WorldTarget::with_fork`])
    /// opts the target into snapshot-forking exploration sessions.
    forkable: Option<fn(&M, &mut StableHasher)>,
}

impl<M: Clone + 'static> WorldTarget<M> {
    /// Creates a world target. `build` must return a freshly built,
    /// deterministic world (same seed every time); `check` judges the
    /// final state.
    pub fn new(
        name: impl Into<String>,
        deadline: Time,
        build: impl FnMut() -> World<M> + 'static,
        check: impl Fn(&World<M>) -> Result<(), Violation> + 'static,
    ) -> Self {
        WorldTarget {
            name: name.into(),
            build: Box::new(build),
            check: Rc::new(check),
            deadline,
            reduction_safe: false,
            forkable: None,
        }
    }

    /// Declares the target's callbacks rng-free, enabling the sleep-set
    /// reduction.
    pub fn with_reduction(mut self) -> Self {
        self.reduction_safe = true;
        self
    }

    /// Opts the target into snapshot-forking exploration: its message
    /// type can be fingerprinted, so [`Target::session`] returns a live
    /// session (provided the world's actors and driver also support
    /// forking — verified with a probe fork when the session opens).
    pub fn with_fork(mut self) -> Self
    where
        M: FingerprintMsg,
    {
        self.forkable = Some(fingerprint_msg::<M>);
        self
    }

    /// Turns the reduction back off (to measure its effect, or to
    /// cross-check that it prunes only commutative interleavings).
    pub fn disable_reduction(&mut self) {
        self.reduction_safe = false;
    }

    fn run_world(&mut self, plan: &[usize]) -> (World<M>, Vec<ChoicePoint>) {
        let mut world = (self.build)();
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        world.set_schedule_policy(ScriptPolicy::new(plan.to_vec(), Rc::clone(&log)));
        world.run_until(self.deadline);
        let choices = log.borrow().clone();
        (world, choices)
    }
}

impl<M: Clone + 'static> Target for WorldTarget<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, plan: &[usize]) -> RunReport {
        let (world, choices) = self.run_world(plan);
        RunReport {
            choices,
            violation: (self.check)(&world).err(),
        }
    }

    fn reduction_safe(&self) -> bool {
        self.reduction_safe
    }

    fn session(&mut self) -> Option<Box<dyn ExploreSession>> {
        let msg_fp = self.forkable?;
        let world = (self.build)();
        // Probe once: if any actor or the driver opts out of forking, the
        // explorer must take the replay path from the start rather than
        // fail mid-search.
        world.try_fork()?;
        Some(Box::new(WorldSession {
            world,
            check: Rc::clone(&self.check),
            deadline: self.deadline,
            msg_fp,
            at: Time::ZERO,
            ready: Vec::new(),
            done: false,
        }))
    }

    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let mut world = (self.build)();
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        world.set_schedule_policy(ScriptPolicy::new(plan.to_vec(), log));
        world.set_sink(FlightRecorder::new(4096).with_dump_path(path));
        world.run_until(self.deadline);
        let at = world.now();
        if let Some(sink) = world.take_sink() {
            if let Ok(mut recorder) = sink.into_any().downcast::<FlightRecorder>() {
                recorder.fail(reason, at);
            }
        }
    }

    fn dump_causal_chain(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let mut world = (self.build)();
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        world.set_schedule_policy(ScriptPolicy::new(plan.to_vec(), log));
        world.set_sink(CausalLog::default());
        world.run_until(self.deadline);
        let Some(sink) = world.take_sink() else {
            return;
        };
        let Ok(causal) = sink.into_any().downcast::<CausalLog>() else {
            return;
        };
        let dag = causal.dag();
        let chain = dag
            .critical_end()
            .map(|id| dag.chain_of(id))
            .unwrap_or_default();
        // Integer-only fields and no wall clock, like every other JSONL
        // artifact: the file is byte-identical across thread counts.
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"t\":\"causal-chain\",\"reason\":\"{}\",\"plan\":{:?},\"events\":{}}}\n",
            reason,
            plan,
            chain.len()
        ));
        for (depth, node) in chain.iter().enumerate() {
            out.push_str(&format!(
                "{{\"t\":\"node\",\"depth\":{},\"id\":{},\"cause\":{},\"at\":{},\"pid\":{},\"segment\":\"{}\"}}\n",
                depth,
                node.id,
                node.cause,
                node.at.as_ticks(),
                node.pid.as_raw(),
                node.segment.label()
            ));
        }
        let _ = std::fs::write(path, out);
    }
}

/// A live [`WorldTarget`] run driven through [`dds_sim::world::World::step_nth`]
/// instead of a [`ScriptPolicy`]: forced steps dispatch in default order,
/// genuine choice points surface to the explorer.
struct WorldSession<M> {
    world: World<M>,
    check: WorldCheck<M>,
    deadline: Time,
    msg_fp: fn(&M, &mut StableHasher),
    /// Instant of the pending choice point, when stopped at one.
    at: Time,
    /// Ready set of the pending choice point, when stopped at one.
    ready: Vec<ReadyEvent>,
    done: bool,
}

impl<M: Clone + 'static> ExploreSession for WorldSession<M> {
    fn advance(&mut self) -> (SessionState, Vec<ReadyEvent>) {
        let mut forced = Vec::new();
        let mut buf = Vec::new();
        loop {
            match self.world.ready_set(&mut buf) {
                Some(at) if at <= self.deadline => {
                    let ready = summarize(&buf);
                    if ready.len() > 1 {
                        self.at = at;
                        self.ready = ready;
                        return (SessionState::Choice, forced);
                    }
                    forced.push(ready[0]);
                    self.world.step_nth(0);
                }
                _ => {
                    self.world.idle_until(self.deadline);
                    self.done = true;
                    self.ready.clear();
                    return (SessionState::Done, forced);
                }
            }
        }
    }

    fn choice(&self) -> Option<ChoicePoint> {
        if self.done || self.ready.len() < 2 {
            return None;
        }
        Some(ChoicePoint {
            at: self.at,
            epoch: self.world.epoch(),
            width: self.ready.len(),
            chosen: 0,
            ready: self.ready.clone(),
        })
    }

    fn choose(&mut self, idx: usize) {
        debug_assert!(self.ready.len() > 1, "choose outside a choice point");
        let idx = idx.min(self.ready.len().saturating_sub(1));
        self.world.step_nth(idx);
        self.ready.clear();
    }

    fn fork(&self) -> Option<Box<dyn ExploreSession>> {
        let world = self.world.try_fork()?;
        Some(Box::new(WorldSession {
            world,
            check: Rc::clone(&self.check),
            deadline: self.deadline,
            msg_fp: self.msg_fp,
            at: self.at,
            ready: self.ready.clone(),
            done: self.done,
        }))
    }

    fn fingerprint(&self) -> Option<u64> {
        self.world.fingerprint(self.msg_fp)
    }

    fn violation(&self) -> Option<Violation> {
        (self.check)(&self.world).err()
    }
}

/// Legality predicate of a [`StabTarget`]: `Ok` when the configuration is
/// legal, `Err(details)` describing the illegality otherwise.
type StabCheck<M> = Rc<dyn Fn(&World<M>) -> Result<(), String>>;

/// A [`Target`] for self-stabilization properties: "eventually legal and
/// stays legal", with an explicit convergence bound.
///
/// Where [`WorldTarget`] judges only the final state, this target judges
/// the *trajectory*: the world must satisfy `legal` at every tick in
/// `(converge_by, hold_until]` — sampled after all events of that tick
/// have dispatched. A run that is illegal at any sample is violated
/// (closure: once legal, the system must not leave the legal set again
/// within the horizon; convergence: it must have entered it by
/// `converge_by`).
///
/// Both execution paths sample identically. The replay path runs the
/// scripted schedule tick by tick; the exploration session evaluates the
/// predicate whenever virtual time is about to move past unfinalized
/// sample instants (the state at those instants is exactly the current
/// state, since no events lie between). The latched verdict — including
/// which tick first went illegal — is folded into the session fingerprint,
/// so deduplication can never identify a violated trajectory with a clean
/// one that happens to share a world state.
pub struct StabTarget<M> {
    name: String,
    build: Box<dyn FnMut() -> World<M>>,
    legal: StabCheck<M>,
    converge_by: Time,
    hold_until: Time,
    reduction_safe: bool,
    forkable: Option<fn(&M, &mut StableHasher)>,
}

impl<M: Clone + 'static> StabTarget<M> {
    /// Creates a stabilization target: the world must be legal at every
    /// tick after `converge_by` through `hold_until`.
    ///
    /// # Panics
    ///
    /// Panics unless `hold_until > converge_by` (an empty sample window
    /// would make every system vacuously stabilizing).
    pub fn new(
        name: impl Into<String>,
        converge_by: Time,
        hold_until: Time,
        build: impl FnMut() -> World<M> + 'static,
        legal: impl Fn(&World<M>) -> Result<(), String> + 'static,
    ) -> Self {
        assert!(
            hold_until > converge_by,
            "the hold window must extend past the convergence bound"
        );
        StabTarget {
            name: name.into(),
            build: Box::new(build),
            legal: Rc::new(legal),
            converge_by,
            hold_until,
            reduction_safe: false,
            forkable: None,
        }
    }

    /// Declares the target's callbacks rng-free, enabling the sleep-set
    /// reduction.
    pub fn with_reduction(mut self) -> Self {
        self.reduction_safe = true;
        self
    }

    /// Opts the target into snapshot-forking exploration (see
    /// [`WorldTarget::with_fork`]).
    pub fn with_fork(mut self) -> Self
    where
        M: FingerprintMsg,
    {
        self.forkable = Some(fingerprint_msg::<M>);
        self
    }

    /// Turns the reduction back off.
    pub fn disable_reduction(&mut self) {
        self.reduction_safe = false;
    }

    fn scripted_world(&mut self, plan: &[usize]) -> (World<M>, ChoiceLog) {
        let mut world = (self.build)();
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        world.set_schedule_policy(ScriptPolicy::new(plan.to_vec(), Rc::clone(&log)));
        (world, log)
    }
}

impl<M: Clone + 'static> Target for StabTarget<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, plan: &[usize]) -> RunReport {
        let (mut world, log) = self.scripted_world(plan);
        world.run_until(self.converge_by);
        let mut violation = None;
        for tick in self.converge_by.as_ticks() + 1..=self.hold_until.as_ticks() {
            world.run_until(Time::from_ticks(tick));
            if violation.is_none() {
                if let Err(details) = (self.legal)(&world) {
                    violation = Some(Violation {
                        reason: format!("illegal configuration at tick {tick}"),
                        details,
                    });
                }
            }
        }
        let choices = log.borrow().clone();
        RunReport { choices, violation }
    }

    fn reduction_safe(&self) -> bool {
        self.reduction_safe
    }

    fn session(&mut self) -> Option<Box<dyn ExploreSession>> {
        let msg_fp = self.forkable?;
        let world = (self.build)();
        world.try_fork()?;
        let next_sample = self.converge_by.as_ticks() + 1;
        Some(Box::new(StabSession {
            world,
            legal: Rc::clone(&self.legal),
            hold_until: self.hold_until,
            msg_fp,
            at: Time::ZERO,
            ready: Vec::new(),
            done: false,
            next_sample,
            violation: None,
        }))
    }

    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let (mut world, _log) = self.scripted_world(plan);
        world.set_sink(FlightRecorder::new(4096).with_dump_path(path));
        world.run_until(self.hold_until);
        let at = world.now();
        if let Some(sink) = world.take_sink() {
            if let Ok(mut recorder) = sink.into_any().downcast::<FlightRecorder>() {
                recorder.fail(reason, at);
            }
        }
    }

    fn dump_causal_chain(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let (mut world, _log) = self.scripted_world(plan);
        world.set_sink(CausalLog::default());
        world.run_until(self.hold_until);
        let Some(sink) = world.take_sink() else {
            return;
        };
        let Ok(causal) = sink.into_any().downcast::<CausalLog>() else {
            return;
        };
        let dag = causal.dag();
        let chain = dag
            .critical_end()
            .map(|id| dag.chain_of(id))
            .unwrap_or_default();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"t\":\"causal-chain\",\"reason\":\"{}\",\"plan\":{:?},\"events\":{}}}\n",
            reason,
            plan,
            chain.len()
        ));
        for (depth, node) in chain.iter().enumerate() {
            out.push_str(&format!(
                "{{\"t\":\"node\",\"depth\":{},\"id\":{},\"cause\":{},\"at\":{},\"pid\":{},\"segment\":\"{}\"}}\n",
                depth,
                node.id,
                node.cause,
                node.at.as_ticks(),
                node.pid.as_raw(),
                node.segment.label()
            ));
        }
        let _ = std::fs::write(path, out);
    }
}

/// The live-session twin of [`StabTarget`]: a [`WorldSession`]-style
/// stepper that additionally finalizes legality samples as virtual time
/// moves past them, latching the first illegal tick.
struct StabSession<M> {
    world: World<M>,
    legal: StabCheck<M>,
    hold_until: Time,
    msg_fp: fn(&M, &mut StableHasher),
    at: Time,
    ready: Vec<ReadyEvent>,
    done: bool,
    /// First sample tick whose state is not yet finalized. Samples are
    /// `converge_by + 1 ..= hold_until`; a sample is finalized once no
    /// event at or before it remains undispatched.
    next_sample: u64,
    violation: Option<Violation>,
}

impl<M: Clone + 'static> StabSession<M> {
    /// Evaluates legality for the current state, attributing a failure to
    /// `next_sample` — the first sample instant the current state covers.
    fn check_now(&mut self) {
        if self.violation.is_some() {
            return;
        }
        if let Err(details) = (self.legal)(&self.world) {
            self.violation = Some(Violation {
                reason: format!("illegal configuration at tick {}", self.next_sample),
                details,
            });
        }
    }

    /// Finalizes every sample instant strictly before `at`: no
    /// undispatched event can change their state, which is exactly the
    /// current state (legality is constant over the span, so one
    /// evaluation covers it).
    fn finalize_samples_before(&mut self, at: Time) {
        let limit = at.as_ticks().min(self.hold_until.as_ticks() + 1);
        if self.next_sample < limit {
            self.check_now();
            self.next_sample = limit;
        }
    }

    /// Finalizes the remaining samples at run end (final state).
    fn finalize_remaining(&mut self) {
        if self.next_sample <= self.hold_until.as_ticks() {
            self.check_now();
            self.next_sample = self.hold_until.as_ticks() + 1;
        }
    }
}

impl<M: Clone + 'static> ExploreSession for StabSession<M> {
    fn advance(&mut self) -> (SessionState, Vec<ReadyEvent>) {
        let mut forced = Vec::new();
        let mut buf = Vec::new();
        loop {
            match self.world.ready_set(&mut buf) {
                Some(at) if at <= self.hold_until => {
                    self.finalize_samples_before(at);
                    let ready = summarize(&buf);
                    if ready.len() > 1 {
                        self.at = at;
                        self.ready = ready;
                        return (SessionState::Choice, forced);
                    }
                    forced.push(ready[0]);
                    self.world.step_nth(0);
                }
                _ => {
                    self.world.idle_until(self.hold_until);
                    self.finalize_remaining();
                    self.done = true;
                    self.ready.clear();
                    return (SessionState::Done, forced);
                }
            }
        }
    }

    fn choice(&self) -> Option<ChoicePoint> {
        if self.done || self.ready.len() < 2 {
            return None;
        }
        Some(ChoicePoint {
            at: self.at,
            epoch: self.world.epoch(),
            width: self.ready.len(),
            chosen: 0,
            ready: self.ready.clone(),
        })
    }

    fn choose(&mut self, idx: usize) {
        debug_assert!(self.ready.len() > 1, "choose outside a choice point");
        let idx = idx.min(self.ready.len().saturating_sub(1));
        self.world.step_nth(idx);
        self.ready.clear();
    }

    fn fork(&self) -> Option<Box<dyn ExploreSession>> {
        let world = self.world.try_fork()?;
        Some(Box::new(StabSession {
            world,
            legal: Rc::clone(&self.legal),
            hold_until: self.hold_until,
            msg_fp: self.msg_fp,
            at: self.at,
            ready: self.ready.clone(),
            done: self.done,
            next_sample: self.next_sample,
            violation: self.violation.clone(),
        }))
    }

    fn fingerprint(&self) -> Option<u64> {
        let world = self.world.fingerprint(self.msg_fp)?;
        // Fold in the trajectory verdict: a violated run must never dedup
        // against a clean run passing through the same world state.
        let mut h = StableHasher::new();
        h.write_u64(world);
        h.write_u64(self.next_sample);
        match &self.violation {
            None => h.write_bool(false),
            Some(v) => {
                h.write_bool(true);
                h.write_str(&v.reason);
            }
        }
        Some(h.finish())
    }

    fn violation(&self) -> Option<Violation> {
        self.violation.clone()
    }
}

/// A [`Target`] wrapping the register interleaving harness: one
/// construction, fixed client scripts and crash events, the schedule
/// chosen by the plan, the history judged for atomicity.
pub struct RegisterTarget {
    name: String,
    construction: Construction,
    t: usize,
    scripts: Vec<Vec<RegOp>>,
    crashes: Vec<CrashEvent>,
    seed: u64,
}

impl RegisterTarget {
    /// Creates a register target. `seed` drives the operation machines'
    /// internal randomness (fixed across plans, so runs are deterministic
    /// functions of the plan).
    pub fn new(
        name: impl Into<String>,
        construction: Construction,
        t: usize,
        scripts: Vec<Vec<RegOp>>,
        crashes: Vec<CrashEvent>,
        seed: u64,
    ) -> Self {
        RegisterTarget {
            name: name.into(),
            construction,
            t,
            scripts,
            crashes,
            seed,
        }
    }
}

impl Target for RegisterTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, plan: &[usize]) -> RunReport {
        let (out, widths) = run_schedule_planned(
            self.construction,
            self.t,
            &self.scripts,
            &self.crashes,
            self.seed,
            plan,
        );
        let choices = widths
            .iter()
            .enumerate()
            .map(|(k, &width)| ChoicePoint {
                at: Time::ZERO,
                epoch: 0,
                width,
                chosen: plan.get(k).copied().unwrap_or(0).min(width - 1),
                ready: Vec::new(), // widths only: reduction stays off
            })
            .collect();
        let violation = match check_atomic(&out.history) {
            Ok(verdict) if verdict.is_linearizable() => None,
            Ok(_) => Some(Violation {
                reason: "history is not linearizable".into(),
                details: out.history.to_string(),
            }),
            Err(err) => Some(Violation {
                reason: format!("history not checkable: {err:?}"),
                details: out.history.to_string(),
            }),
        };
        RunReport { choices, violation }
    }

    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let (out, _) = run_schedule_planned(
            self.construction,
            self.t,
            &self.scripts,
            &self.crashes,
            self.seed,
            plan,
        );
        // Render the history as spans: invocation opens, response closes.
        let mut recorder =
            FlightRecorder::new((2 * out.history.records().len()).max(16)).with_dump_path(path);
        let mut last = Time::ZERO;
        let mut spans: Vec<(Time, ObsEvent)> = Vec::new();
        for rec in out.history.records() {
            let name = match rec.op {
                RegOp::Write(_) => "write",
                RegOp::Read => "read",
            };
            spans.push((
                rec.invoked,
                ObsEvent::SpanStart {
                    name,
                    pid: rec.process,
                    at: rec.invoked,
                },
            ));
            if let Some(responded) = rec.responded {
                spans.push((
                    responded,
                    ObsEvent::SpanEnd {
                        name,
                        pid: rec.process,
                        at: responded,
                    },
                ));
                last = last.max(responded);
            }
        }
        spans.sort_by_key(|&(at, _)| at);
        // Register histories have no kernel event ids; number the spans
        // in time order so the dump is still causality-complete JSONL.
        for (i, (_, ev)) in spans.iter().enumerate() {
            let causal = dds_core::run::Causality { id: i as u64 + 1, cause: 0 };
            dds_obs::Sink::record(&mut recorder, ev, causal);
        }
        dds_obs::Sink::fail(&mut recorder, reason, last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_target_reports_widths_as_choice_points() {
        let mut target = RegisterTarget::new(
            "responsive",
            Construction::ResponsiveAll { write_back: true },
            1,
            vec![vec![RegOp::Write(1)], vec![RegOp::Read]],
            vec![],
            7,
        );
        let report = target.run(&[]);
        assert!(report.violation.is_none());
        assert!(report.decisions() > 0);
        assert!(report.choices.iter().all(|c| c.ready.is_empty()));
        assert_eq!(report.plan(), vec![0; report.decisions()]);
        assert!(!target.reduction_safe());
    }

    #[test]
    fn counterexample_trims_trailing_defaults() {
        let v = Violation {
            reason: "x".into(),
            details: String::new(),
        };
        let ce = Counterexample::new(&[0, 2, 0, 1, 0, 0], v);
        assert_eq!(ce.plan, vec![0, 2, 0, 1]);
        assert_eq!(ce.preemptions, 2);
    }
}
