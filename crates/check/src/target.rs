//! The system-under-check abstraction and its two implementations.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use dds_core::spec::register::{check_atomic, RegOp};
use dds_core::time::Time;
use dds_obs::{FlightRecorder, ObsEvent, Sink};
use dds_registers::construction::Construction;
use dds_registers::harness::{run_schedule_planned, CrashEvent};
use dds_sim::world::World;

use crate::schedule::{ChoiceLog, ChoicePoint, ScriptPolicy};

/// Final-state property over a finished world.
type WorldCheck<M> = Box<dyn Fn(&World<M>) -> Result<(), Violation>>;

/// A property failure observed in one run.
#[derive(Debug, Clone)]
pub struct Violation {
    /// One-line description of what broke.
    pub reason: String,
    /// Supporting evidence (e.g. the rendered history).
    pub details: String,
}

/// What one run under a fixed decision vector produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The schedule log: forced steps (`width == 1`) and genuine choice
    /// points (`width > 1`), in execution order.
    pub choices: Vec<ChoicePoint>,
    /// The property verdict.
    pub violation: Option<Violation>,
}

impl RunReport {
    /// The decision vector that reproduces this run: one entry per
    /// genuine choice point.
    pub fn plan(&self) -> Vec<usize> {
        self.choices
            .iter()
            .filter(|c| c.width > 1)
            .map(|c| c.chosen)
            .collect()
    }

    /// Number of genuine choice points.
    pub fn decisions(&self) -> usize {
        self.choices.iter().filter(|c| c.width > 1).count()
    }
}

/// A minimized failing schedule, ready to be replayed or reported.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The decision vector that reproduces the failure (trailing defaults
    /// trimmed).
    pub plan: Vec<usize>,
    /// Number of non-default decisions in `plan`.
    pub preemptions: usize,
    /// What broke.
    pub violation: Violation,
}

impl Counterexample {
    pub(crate) fn new(plan: &[usize], violation: Violation) -> Self {
        let mut plan = plan.to_vec();
        while plan.last() == Some(&0) {
            plan.pop();
        }
        let preemptions = plan.iter().filter(|&&d| d != 0).count();
        Counterexample {
            plan,
            preemptions,
            violation,
        }
    }
}

/// A system that can be run under an explicit decision vector.
///
/// `plan[k]` picks among the ready alternatives at the `k`-th genuine
/// choice point; entries are clamped and missing entries mean "default
/// order", so every `plan` is legal and the empty plan is the unmodified
/// system. Runs must be deterministic functions of the plan.
pub trait Target {
    /// Short identifier for reports.
    fn name(&self) -> &str;

    /// Runs the system once under `plan`.
    fn run(&mut self, plan: &[usize]) -> RunReport;

    /// Whether the partial-order reduction may be applied: only sound
    /// when the target reports ready sets and its actor callbacks do not
    /// race through the shared rng (see
    /// [`crate::schedule::ReadyEvent::independent`]).
    fn reduction_safe(&self) -> bool {
        false
    }

    /// Replays `plan` and dumps the run's event history as JSONL to
    /// `path` through a [`FlightRecorder`].
    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str);
}

/// A [`Target`] wrapping a simulator world: build it, run it under a
/// scripted schedule until `deadline`, then check a property over the
/// final state.
pub struct WorldTarget<M> {
    name: String,
    build: Box<dyn FnMut() -> World<M>>,
    check: WorldCheck<M>,
    deadline: Time,
    reduction_safe: bool,
}

impl<M: Clone + 'static> WorldTarget<M> {
    /// Creates a world target. `build` must return a freshly built,
    /// deterministic world (same seed every time); `check` judges the
    /// final state.
    pub fn new(
        name: impl Into<String>,
        deadline: Time,
        build: impl FnMut() -> World<M> + 'static,
        check: impl Fn(&World<M>) -> Result<(), Violation> + 'static,
    ) -> Self {
        WorldTarget {
            name: name.into(),
            build: Box::new(build),
            check: Box::new(check),
            deadline,
            reduction_safe: false,
        }
    }

    /// Declares the target's callbacks rng-free, enabling the sleep-set
    /// reduction.
    pub fn with_reduction(mut self) -> Self {
        self.reduction_safe = true;
        self
    }

    /// Turns the reduction back off (to measure its effect, or to
    /// cross-check that it prunes only commutative interleavings).
    pub fn disable_reduction(&mut self) {
        self.reduction_safe = false;
    }

    fn run_world(&mut self, plan: &[usize]) -> (World<M>, Vec<ChoicePoint>) {
        let mut world = (self.build)();
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        world.set_schedule_policy(ScriptPolicy::new(plan.to_vec(), Rc::clone(&log)));
        world.run_until(self.deadline);
        let choices = log.borrow().clone();
        (world, choices)
    }
}

impl<M: Clone + 'static> Target for WorldTarget<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, plan: &[usize]) -> RunReport {
        let (world, choices) = self.run_world(plan);
        RunReport {
            choices,
            violation: (self.check)(&world).err(),
        }
    }

    fn reduction_safe(&self) -> bool {
        self.reduction_safe
    }

    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let mut world = (self.build)();
        let log: ChoiceLog = Rc::new(RefCell::new(Vec::new()));
        world.set_schedule_policy(ScriptPolicy::new(plan.to_vec(), log));
        world.set_sink(FlightRecorder::new(4096).with_dump_path(path));
        world.run_until(self.deadline);
        let at = world.now();
        if let Some(sink) = world.take_sink() {
            if let Ok(mut recorder) = sink.into_any().downcast::<FlightRecorder>() {
                recorder.fail(reason, at);
            }
        }
    }
}

/// A [`Target`] wrapping the register interleaving harness: one
/// construction, fixed client scripts and crash events, the schedule
/// chosen by the plan, the history judged for atomicity.
pub struct RegisterTarget {
    name: String,
    construction: Construction,
    t: usize,
    scripts: Vec<Vec<RegOp>>,
    crashes: Vec<CrashEvent>,
    seed: u64,
}

impl RegisterTarget {
    /// Creates a register target. `seed` drives the operation machines'
    /// internal randomness (fixed across plans, so runs are deterministic
    /// functions of the plan).
    pub fn new(
        name: impl Into<String>,
        construction: Construction,
        t: usize,
        scripts: Vec<Vec<RegOp>>,
        crashes: Vec<CrashEvent>,
        seed: u64,
    ) -> Self {
        RegisterTarget {
            name: name.into(),
            construction,
            t,
            scripts,
            crashes,
            seed,
        }
    }
}

impl Target for RegisterTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, plan: &[usize]) -> RunReport {
        let (out, widths) = run_schedule_planned(
            self.construction,
            self.t,
            &self.scripts,
            &self.crashes,
            self.seed,
            plan,
        );
        let choices = widths
            .iter()
            .enumerate()
            .map(|(k, &width)| ChoicePoint {
                at: Time::ZERO,
                epoch: 0,
                width,
                chosen: plan.get(k).copied().unwrap_or(0).min(width - 1),
                ready: Vec::new(), // widths only: reduction stays off
            })
            .collect();
        let violation = match check_atomic(&out.history) {
            Ok(verdict) if verdict.is_linearizable() => None,
            Ok(_) => Some(Violation {
                reason: "history is not linearizable".into(),
                details: out.history.to_string(),
            }),
            Err(err) => Some(Violation {
                reason: format!("history not checkable: {err:?}"),
                details: out.history.to_string(),
            }),
        };
        RunReport { choices, violation }
    }

    fn dump_counterexample(&mut self, plan: &[usize], path: &Path, reason: &str) {
        let (out, _) = run_schedule_planned(
            self.construction,
            self.t,
            &self.scripts,
            &self.crashes,
            self.seed,
            plan,
        );
        // Render the history as spans: invocation opens, response closes.
        let mut recorder =
            FlightRecorder::new((2 * out.history.records().len()).max(16)).with_dump_path(path);
        let mut last = Time::ZERO;
        let mut spans: Vec<(Time, ObsEvent)> = Vec::new();
        for rec in out.history.records() {
            let name = match rec.op {
                RegOp::Write(_) => "write",
                RegOp::Read => "read",
            };
            spans.push((
                rec.invoked,
                ObsEvent::SpanStart {
                    name,
                    pid: rec.process,
                    at: rec.invoked,
                },
            ));
            if let Some(responded) = rec.responded {
                spans.push((
                    responded,
                    ObsEvent::SpanEnd {
                        name,
                        pid: rec.process,
                        at: responded,
                    },
                ));
                last = last.max(responded);
            }
        }
        spans.sort_by_key(|&(at, _)| at);
        for (_, ev) in &spans {
            dds_obs::Sink::record(&mut recorder, ev);
        }
        dds_obs::Sink::fail(&mut recorder, reason, last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_target_reports_widths_as_choice_points() {
        let mut target = RegisterTarget::new(
            "responsive",
            Construction::ResponsiveAll { write_back: true },
            1,
            vec![vec![RegOp::Write(1)], vec![RegOp::Read]],
            vec![],
            7,
        );
        let report = target.run(&[]);
        assert!(report.violation.is_none());
        assert!(report.decisions() > 0);
        assert!(report.choices.iter().all(|c| c.ready.is_empty()));
        assert_eq!(report.plan(), vec![0; report.decisions()]);
        assert!(!target.reduction_safe());
    }

    #[test]
    fn counterexample_trims_trailing_defaults() {
        let v = Violation {
            reason: "x".into(),
            details: String::new(),
        };
        let ce = Counterexample::new(&[0, 2, 0, 1, 0, 0], v);
        assert_eq!(ce.plan, vec![0, 2, 0, 1]);
        assert_eq!(ce.preemptions, 2);
    }
}
