//! Bounded exhaustive schedule exploration: replay-based iterative DFS
//! over decision vectors with a sleep-set partial-order reduction.
//!
//! The explorer treats the target as a deterministic function from a
//! decision vector (one index per same-instant tie) to a run. Starting
//! from the default schedule (empty vector) it walks the tree of
//! alternatives depth-first *by replay*: to visit a sibling it re-runs
//! the target with the shared prefix plus one deviated decision, which
//! keeps the kernel entirely stateless between runs.
//!
//! Three budgets bound the walk:
//!
//! - `max_runs` — total target executions (the hard CI budget);
//! - `max_depth` — only the first `max_depth` choice points may deviate
//!   (later ties always take the default order);
//! - `max_preemptions` — at most this many non-default decisions per
//!   schedule, the classic preemption-bounding heuristic: most
//!   schedule-dependent bugs need only a couple of inversions.
//!
//! When the target opts in ([`Target::reduction_safe`]), sleep sets prune
//! commutative interleavings: after the subtree dispatching event `e`
//! first is explored, `e` is put to sleep, and sibling subtrees skip any
//! alternative whose first event is independent of everything that
//! happened since — independence being "delivers to a distinct actor"
//! ([`crate::schedule::ReadyEvent::independent`]), conservatively
//! invalidated by world mutation (`epoch` changes) and by forced steps
//! that conflict with a sleeping event. This is a *bounded* reduction: it
//! prunes schedules whose difference provably cannot matter, and every
//! seeded mutant must still be caught with it enabled.

use crate::schedule::{ChoicePoint, ReadyEvent};
use crate::target::{Counterexample, RunReport, Target};

/// Exploration budgets. All three must hold for a deviation to be tried.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum target runs (≥ 1; the default schedule costs one).
    pub max_runs: usize,
    /// Deepest choice point allowed to deviate from default order.
    pub max_depth: usize,
    /// Maximum non-default decisions per schedule.
    pub max_preemptions: usize,
}

impl Default for Budget {
    /// A CI-friendly budget: 512 runs, 32 choice points, 2 preemptions.
    fn default() -> Self {
        Budget {
            max_runs: 512,
            max_depth: 32,
            max_preemptions: 2,
        }
    }
}

/// What the exploration did.
#[derive(Debug, Clone)]
pub struct Explored {
    /// Target runs consumed.
    pub runs: usize,
    /// First property violation found, if any.
    pub counterexample: Option<Counterexample>,
    /// `true` when the bounded space was fully explored (no violation and
    /// no budget exhaustion).
    pub exhausted: bool,
}

/// One genuine choice point along the current DFS path.
struct Node {
    width: usize,
    ready: Vec<ReadyEvent>,
    epoch: u64,
    chosen: usize,
    tried: Vec<bool>,
    /// Inherited sleep set (events whose first-dispatch here is pruned).
    sleep: Vec<ReadyEvent>,
    /// Executed events of completed sibling subtrees at this node.
    done: Vec<ReadyEvent>,
    /// Forced (width-1) steps executed between this choice and the next,
    /// as seen by the run that built the current suffix.
    forced_after: Vec<ReadyEvent>,
}

impl Node {
    fn executed(&self) -> Option<ReadyEvent> {
        self.ready.get(self.chosen).copied()
    }

    fn asleep(&self, ev: &ReadyEvent) -> bool {
        self.sleep.iter().chain(&self.done).any(|s| s.seq == ev.seq)
    }
}

/// Splits a run's schedule log into genuine choice points, each paired
/// with the forced steps executed after it (before the next choice).
fn segments(choices: &[ChoicePoint]) -> Vec<(ChoicePoint, Vec<ReadyEvent>)> {
    let mut out: Vec<(ChoicePoint, Vec<ReadyEvent>)> = Vec::new();
    for cp in choices {
        if cp.width > 1 {
            out.push((cp.clone(), Vec::new()));
        } else if let (Some(last), Some(ev)) = (out.last_mut(), cp.executed()) {
            last.1.push(ev);
        }
    }
    out
}

fn node_from(cp: &ChoicePoint, forced_after: Vec<ReadyEvent>, sleep: Vec<ReadyEvent>) -> Node {
    let mut tried = vec![false; cp.width];
    tried[cp.chosen] = true;
    Node {
        width: cp.width,
        ready: cp.ready.clone(),
        epoch: cp.epoch,
        chosen: cp.chosen,
        tried,
        sleep,
        done: Vec::new(),
        forced_after,
    }
}

/// The sleep set a child node inherits: everything sleeping at the parent
/// (inherited + completed siblings) that is independent of the executed
/// event and of every forced step in between, provided no world mutation
/// happened (`epoch` unchanged), restricted to the child's ready set.
fn child_sleep(parent: &Node, child: &ChoicePoint) -> Vec<ReadyEvent> {
    if child.epoch != parent.epoch {
        return Vec::new();
    }
    let Some(executed) = parent.executed() else {
        return Vec::new();
    };
    parent
        .sleep
        .iter()
        .chain(&parent.done)
        .filter(|s| {
            s.independent(&executed)
                && parent.forced_after.iter().all(|f| s.independent(f))
                && child.ready.iter().any(|r| r.seq == s.seq)
        })
        .copied()
        .collect()
}

/// Extends `path` with nodes for every choice point of `report` beyond
/// the first `keep` (which must match the existing prefix).
fn extend_path(path: &mut Vec<Node>, keep: usize, report: &RunReport, por: bool) {
    let segs = segments(&report.choices);
    if let Some(last) = keep.checked_sub(1) {
        if let Some((_, forced)) = segs.get(last) {
            path[last].forced_after = forced.clone();
        }
    }
    path.truncate(keep);
    for (cp, forced) in segs.into_iter().skip(keep) {
        let sleep = match (por, path.last()) {
            (true, Some(parent)) => child_sleep(parent, &cp),
            _ => Vec::new(),
        };
        path.push(node_from(&cp, forced, sleep));
    }
}

/// Explores the target's bounded schedule space depth-first, returning
/// the first violation found (or exhaustion).
pub fn explore(target: &mut dyn Target, budget: Budget) -> Explored {
    let por = target.reduction_safe();
    let mut runs = 0usize;
    let mut run = |plan: &[usize], runs: &mut usize| {
        *runs += 1;
        target.run(plan)
    };

    let report = run(&[], &mut runs);
    if let Some(v) = report.violation.clone() {
        return Explored {
            runs,
            counterexample: Some(Counterexample::new(&report.plan(), v)),
            exhausted: false,
        };
    }
    let mut path: Vec<Node> = Vec::new();
    extend_path(&mut path, 0, &report, por);

    while runs < budget.max_runs {
        // Deepest node with an admissible untried alternative.
        let Some((depth, alt)) = deepest_admissible(&path, budget) else {
            return Explored {
                runs,
                counterexample: None,
                exhausted: true,
            };
        };
        // The deepest-first discipline means every node below `depth` is
        // exhausted, so the subtree under the current choice is complete:
        // its first event goes to sleep for the remaining siblings.
        if let Some(ev) = path[depth].executed() {
            path[depth].done.push(ev);
        }
        path[depth].tried[alt] = true;
        path[depth].chosen = alt;
        let plan: Vec<usize> = path[..=depth].iter().map(|n| n.chosen).collect();

        let report = run(&plan, &mut runs);
        if let Some(v) = report.violation.clone() {
            return Explored {
                runs,
                counterexample: Some(Counterexample::new(&report.plan(), v)),
                exhausted: false,
            };
        }
        extend_path(&mut path, depth + 1, &report, por);
    }
    Explored {
        runs,
        counterexample: None,
        exhausted: false,
    }
}

fn deepest_admissible(path: &[Node], budget: Budget) -> Option<(usize, usize)> {
    for depth in (0..path.len().min(budget.max_depth)).rev() {
        let node = &path[depth];
        let preemptions = path[..depth].iter().filter(|n| n.chosen != 0).count();
        for alt in 0..node.width {
            if node.tried[alt] {
                continue;
            }
            if preemptions + usize::from(alt != 0) > budget.max_preemptions {
                continue;
            }
            if let Some(ev) = node.ready.get(alt) {
                if node.asleep(ev) {
                    continue;
                }
            }
            return Some((depth, alt));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Violation;
    use std::path::Path;

    /// A synthetic target over an explicit decision tree: `widths[k]` is
    /// the width of the `k`-th choice point; the property fails exactly on
    /// the `bad` decision vector.
    struct TreeTarget {
        widths: Vec<usize>,
        bad: Option<Vec<usize>>,
        runs_seen: Vec<Vec<usize>>,
    }

    impl TreeTarget {
        fn new(widths: Vec<usize>, bad: Option<Vec<usize>>) -> Self {
            TreeTarget {
                widths,
                bad,
                runs_seen: Vec::new(),
            }
        }
    }

    impl Target for TreeTarget {
        fn name(&self) -> &str {
            "tree"
        }

        fn run(&mut self, plan: &[usize]) -> RunReport {
            let resolved: Vec<usize> = self
                .widths
                .iter()
                .enumerate()
                .map(|(k, &w)| plan.get(k).copied().unwrap_or(0).min(w - 1))
                .collect();
            self.runs_seen.push(resolved.clone());
            let choices = self
                .widths
                .iter()
                .zip(&resolved)
                .map(|(&width, &chosen)| ChoicePoint {
                    at: dds_core::time::Time::ZERO,
                    epoch: 0,
                    width,
                    chosen,
                    ready: Vec::new(),
                })
                .collect();
            let violation = (self.bad.as_deref() == Some(&resolved)).then(|| Violation {
                reason: "bad schedule reached".into(),
                details: format!("{resolved:?}"),
            });
            RunReport { choices, violation }
        }

        fn dump_counterexample(&mut self, _: &[usize], _: &Path, _: &str) {}
    }

    #[test]
    fn exhausts_a_small_tree() {
        let mut t = TreeTarget::new(vec![2, 3], None);
        let out = explore(
            &mut t,
            Budget {
                max_runs: 100,
                max_depth: 8,
                max_preemptions: 8,
            },
        );
        assert!(out.exhausted);
        assert!(out.counterexample.is_none());
        assert_eq!(out.runs, 6, "2 × 3 schedules, each run once");
        let mut seen = t.runs_seen.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "no schedule visited twice");
    }

    #[test]
    fn finds_a_planted_violation() {
        let mut t = TreeTarget::new(vec![2, 2, 2], Some(vec![1, 0, 1]));
        let out = explore(&mut t, Budget::default());
        let ce = out.counterexample.expect("must find the planted schedule");
        assert_eq!(ce.plan, vec![1, 0, 1]);
        assert_eq!(ce.preemptions, 2);
    }

    #[test]
    fn preemption_bound_prunes() {
        // The planted violation needs 3 preemptions; a 2-preemption budget
        // must exhaust without finding it.
        let mut t = TreeTarget::new(vec![2, 2, 2], Some(vec![1, 1, 1]));
        let out = explore(
            &mut t,
            Budget {
                max_runs: 1000,
                max_depth: 8,
                max_preemptions: 2,
            },
        );
        assert!(out.counterexample.is_none());
        assert!(out.exhausted);
        let out2 = explore(
            &mut TreeTarget::new(vec![2, 2, 2], Some(vec![1, 1, 1])),
            Budget {
                max_runs: 1000,
                max_depth: 8,
                max_preemptions: 3,
            },
        );
        assert!(out2.counterexample.is_some());
    }

    #[test]
    fn run_budget_is_a_hard_cap() {
        let mut t = TreeTarget::new(vec![4, 4, 4, 4], None);
        let out = explore(
            &mut t,
            Budget {
                max_runs: 10,
                max_depth: 8,
                max_preemptions: 8,
            },
        );
        assert_eq!(out.runs, 10);
        assert!(!out.exhausted);
    }
}
