//! Bounded exhaustive schedule exploration: replay-based iterative DFS
//! over decision vectors with a sleep-set partial-order reduction.
//!
//! The explorer treats the target as a deterministic function from a
//! decision vector (one index per same-instant tie) to a run. Starting
//! from the default schedule (empty vector) it walks the tree of
//! alternatives depth-first *by replay*: to visit a sibling it re-runs
//! the target with the shared prefix plus one deviated decision, which
//! keeps the kernel entirely stateless between runs.
//!
//! Three budgets bound the walk:
//!
//! - `max_runs` — total target executions (the hard CI budget);
//! - `max_depth` — only the first `max_depth` choice points may deviate
//!   (later ties always take the default order);
//! - `max_preemptions` — at most this many non-default decisions per
//!   schedule, the classic preemption-bounding heuristic: most
//!   schedule-dependent bugs need only a couple of inversions.
//!
//! When the target opts in ([`Target::reduction_safe`]), sleep sets prune
//! commutative interleavings: after the subtree dispatching event `e`
//! first is explored, `e` is put to sleep, and sibling subtrees skip any
//! alternative whose first event is independent of everything that
//! happened since — independence being "delivers to a distinct actor"
//! ([`crate::schedule::ReadyEvent::independent`]), conservatively
//! invalidated by world mutation (`epoch` changes) and by forced steps
//! that conflict with a sleeping event. This is a *bounded* reduction: it
//! prunes schedules whose difference provably cannot matter, and every
//! seeded mutant must still be caught with it enabled.

use std::collections::HashSet;

use crate::schedule::{ChoicePoint, ReadyEvent};
use crate::target::{Counterexample, ExploreSession, RunReport, SessionState, Target, Violation};

/// How [`explore`] walks the schedule tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Fork the world at choice points and deduplicate states (the
    /// default); targets without session support still replay.
    Fork,
    /// Legacy whole-run replay of decision vectors, kept as the
    /// verification path behind `DDS_EXPLORE=replay`.
    Replay,
}

impl ExploreMode {
    /// Stable lowercase label (`"fork"` / `"replay"`).
    pub const fn label(self) -> &'static str {
        match self {
            ExploreMode::Fork => "fork",
            ExploreMode::Replay => "replay",
        }
    }
}

/// The exploration strategy selected by the `DDS_EXPLORE` environment
/// variable: `replay` picks the legacy whole-run replay, anything else
/// (including unset) the snapshot-forking explorer — mirroring the
/// `DDS_QUEUE=heap` escape hatch.
pub fn configured_explore_mode() -> ExploreMode {
    match std::env::var("DDS_EXPLORE") {
        Ok(v) if v.eq_ignore_ascii_case("replay") => ExploreMode::Replay,
        _ => ExploreMode::Fork,
    }
}

/// Runs between two [`ProgressSample`]s. Coarse enough that sampling is
/// free next to target execution, fine enough that a default budget
/// (512 runs) still yields a couple of points per shard.
pub const PROGRESS_INTERVAL: usize = 256;

/// A snapshot of the explorer's work counters, taken every
/// [`PROGRESS_INTERVAL`] runs along the walk.
///
/// Every field is a pure function of the explored tree — no wall-clock,
/// no thread ids — so the sample vector is byte-identical at any
/// `DDS_THREADS` value (shards are structure-determined and samples
/// merge in shard order). Consumers that want timestamps attach them at
/// emission time, on stderr or in a side-channel file, never in the
/// checker's canonical JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSample {
    /// Runs consumed when the sample was taken.
    pub runs: usize,
    /// Choice-point states expanded so far.
    pub states_explored: usize,
    /// Dedup prunes so far.
    pub dedup_hits: usize,
    /// Snapshots taken so far.
    pub forks: usize,
    /// Depth of the live DFS path at the sample point.
    pub frontier_depth: usize,
}

impl ProgressSample {
    /// Fraction of descents cut short by state dedup, in `[0, 1]`.
    pub fn dedup_ratio(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.runs as f64
        }
    }
}

/// Exploration budgets. All three must hold for a deviation to be tried.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum target runs (≥ 1; the default schedule costs one).
    pub max_runs: usize,
    /// Deepest choice point allowed to deviate from default order.
    pub max_depth: usize,
    /// Maximum non-default decisions per schedule.
    pub max_preemptions: usize,
}

impl Default for Budget {
    /// A CI-friendly budget: 512 runs, 32 choice points, 2 preemptions.
    fn default() -> Self {
        Budget {
            max_runs: 512,
            max_depth: 32,
            max_preemptions: 2,
        }
    }
}

/// What the exploration did.
#[derive(Debug, Clone)]
pub struct Explored {
    /// Runs consumed against `max_runs`: whole target executions in
    /// replay mode; descents to a terminal or dedup-pruned state in fork
    /// mode (a pruned descent is far cheaper but still spends a slot, so
    /// the budget stays a hard cap in both modes).
    pub runs: usize,
    /// Choice-point states expanded by the forking explorer (0 in replay
    /// mode, which never identifies states).
    pub states_explored: usize,
    /// Descents cut short because the state (with equal remaining
    /// budgets and sleep set) was already explored violation-free.
    pub dedup_hits: usize,
    /// World snapshots taken ([`ExploreSession::fork`] calls).
    pub forks: usize,
    /// First property violation found, if any.
    pub counterexample: Option<Counterexample>,
    /// `true` when the bounded space was fully explored (no violation and
    /// no budget exhaustion).
    pub exhausted: bool,
    /// Periodic counter snapshots (one per [`PROGRESS_INTERVAL`] runs),
    /// concatenated in shard order under [`explore_parallel`]. Purely
    /// structural, so identical at any `DDS_THREADS` value.
    pub progress: Vec<ProgressSample>,
}

/// One genuine choice point along the current DFS path.
struct Node {
    width: usize,
    ready: Vec<ReadyEvent>,
    epoch: u64,
    chosen: usize,
    tried: Vec<bool>,
    /// Inherited sleep set (events whose first-dispatch here is pruned).
    sleep: Vec<ReadyEvent>,
    /// Executed events of completed sibling subtrees at this node.
    done: Vec<ReadyEvent>,
    /// Forced (width-1) steps executed between this choice and the next,
    /// as seen by the run that built the current suffix.
    forced_after: Vec<ReadyEvent>,
}

impl Node {
    fn executed(&self) -> Option<ReadyEvent> {
        self.ready.get(self.chosen).copied()
    }

    fn asleep(&self, ev: &ReadyEvent) -> bool {
        self.sleep.iter().chain(&self.done).any(|s| s.seq == ev.seq)
    }
}

/// Splits a run's schedule log into genuine choice points, each paired
/// with the forced steps executed after it (before the next choice).
fn segments(choices: &[ChoicePoint]) -> Vec<(ChoicePoint, Vec<ReadyEvent>)> {
    let mut out: Vec<(ChoicePoint, Vec<ReadyEvent>)> = Vec::new();
    for cp in choices {
        if cp.width > 1 {
            out.push((cp.clone(), Vec::new()));
        } else if let (Some(last), Some(ev)) = (out.last_mut(), cp.executed()) {
            last.1.push(ev);
        }
    }
    out
}

fn node_from(cp: &ChoicePoint, forced_after: Vec<ReadyEvent>, sleep: Vec<ReadyEvent>) -> Node {
    let mut tried = vec![false; cp.width];
    tried[cp.chosen] = true;
    Node {
        width: cp.width,
        ready: cp.ready.clone(),
        epoch: cp.epoch,
        chosen: cp.chosen,
        tried,
        sleep,
        done: Vec::new(),
        forced_after,
    }
}

/// The sleep set a child node inherits: everything sleeping at the parent
/// (inherited + completed siblings) that is independent of the executed
/// event and of every forced step in between, provided no world mutation
/// happened (`epoch` unchanged), restricted to the child's ready set.
fn child_sleep(parent: &Node, child: &ChoicePoint) -> Vec<ReadyEvent> {
    if child.epoch != parent.epoch {
        return Vec::new();
    }
    let Some(executed) = parent.executed() else {
        return Vec::new();
    };
    parent
        .sleep
        .iter()
        .chain(&parent.done)
        .filter(|s| {
            s.independent(&executed)
                && parent.forced_after.iter().all(|f| s.independent(f))
                && child.ready.iter().any(|r| r.seq == s.seq)
        })
        .copied()
        .collect()
}

/// Extends `path` with nodes for every choice point of `report` beyond
/// the first `keep` (which must match the existing prefix).
fn extend_path(path: &mut Vec<Node>, keep: usize, report: &RunReport, por: bool) {
    let segs = segments(&report.choices);
    if let Some(last) = keep.checked_sub(1) {
        if let Some((_, forced)) = segs.get(last) {
            path[last].forced_after = forced.clone();
        }
    }
    path.truncate(keep);
    for (cp, forced) in segs.into_iter().skip(keep) {
        let sleep = match (por, path.last()) {
            (true, Some(parent)) => child_sleep(parent, &cp),
            _ => Vec::new(),
        };
        path.push(node_from(&cp, forced, sleep));
    }
}

/// Explores the target's bounded schedule space depth-first, returning
/// the first violation found (or exhaustion).
///
/// Dispatches on [`configured_explore_mode`]: the default forks world
/// snapshots at choice points (when the target supports sessions) and
/// deduplicates states; `DDS_EXPLORE=replay` — or a target without
/// session support — replays whole decision vectors. Both walks visit
/// alternatives in the same DFS order, so the first counterexample (and
/// its plan) is identical; fork mode merely skips work replay re-does.
pub fn explore(target: &mut dyn Target, budget: Budget) -> Explored {
    match configured_explore_mode() {
        ExploreMode::Replay => explore_replay(target, budget),
        ExploreMode::Fork => match explore_fork(target, budget) {
            Some(out) => out,
            None => explore_replay(target, budget),
        },
    }
}

/// The legacy replay-DFS explorer: one whole [`Target::run`] per visited
/// schedule. Kept as the verification/fallback path.
pub fn explore_replay(target: &mut dyn Target, budget: Budget) -> Explored {
    let por = target.reduction_safe();
    let mut runs = 0usize;
    let mut run = |plan: &[usize], runs: &mut usize| {
        *runs += 1;
        target.run(plan)
    };
    let mut progress: Vec<ProgressSample> = Vec::new();
    let mut next_sample = PROGRESS_INTERVAL;

    let report = run(&[], &mut runs);
    if let Some(v) = report.violation.clone() {
        return Explored {
            runs,
            states_explored: 0,
            dedup_hits: 0,
            forks: 0,
            counterexample: Some(Counterexample::new(&report.plan(), v)),
            exhausted: false,
            progress,
        };
    }
    let mut path: Vec<Node> = Vec::new();
    extend_path(&mut path, 0, &report, por);

    while runs < budget.max_runs {
        if runs >= next_sample {
            progress.push(ProgressSample {
                runs,
                states_explored: 0,
                dedup_hits: 0,
                forks: 0,
                frontier_depth: path.len(),
            });
            next_sample = (runs / PROGRESS_INTERVAL + 1) * PROGRESS_INTERVAL;
        }
        // Deepest node with an admissible untried alternative.
        let Some((depth, alt)) = deepest_admissible(&path, budget) else {
            return Explored {
                runs,
                states_explored: 0,
                dedup_hits: 0,
                forks: 0,
                counterexample: None,
                exhausted: true,
                progress,
            };
        };
        // The deepest-first discipline means every node below `depth` is
        // exhausted, so the subtree under the current choice is complete:
        // its first event goes to sleep for the remaining siblings.
        if let Some(ev) = path[depth].executed() {
            path[depth].done.push(ev);
        }
        path[depth].tried[alt] = true;
        path[depth].chosen = alt;
        let plan: Vec<usize> = path[..=depth].iter().map(|n| n.chosen).collect();

        let report = run(&plan, &mut runs);
        if let Some(v) = report.violation.clone() {
            return Explored {
                runs,
                states_explored: 0,
                dedup_hits: 0,
                forks: 0,
                counterexample: Some(Counterexample::new(&report.plan(), v)),
                exhausted: false,
                progress,
            };
        }
        extend_path(&mut path, depth + 1, &report, por);
    }
    Explored {
        runs,
        states_explored: 0,
        dedup_hits: 0,
        forks: 0,
        counterexample: None,
        exhausted: false,
        progress,
    }
}

/// First untried alternative at `node` admissible under the preemption
/// budget and the sleep set — the single admissibility rule both the
/// replay and fork walks share, so their DFS orders cannot drift.
fn first_admissible(node: &Node, preemptions: usize, budget: Budget) -> Option<usize> {
    for alt in 0..node.width {
        if node.tried[alt] {
            continue;
        }
        if preemptions + usize::from(alt != 0) > budget.max_preemptions {
            continue;
        }
        if let Some(ev) = node.ready.get(alt) {
            if node.asleep(ev) {
                continue;
            }
        }
        return Some(alt);
    }
    None
}

fn deepest_admissible(path: &[Node], budget: Budget) -> Option<(usize, usize)> {
    for depth in (0..path.len().min(budget.max_depth)).rev() {
        let preemptions = path[..depth].iter().filter(|n| n.chosen != 0).count();
        if let Some(alt) = first_admissible(&path[depth], preemptions, budget) {
            return Some((depth, alt));
        }
    }
    None
}

/// One choice point along the forking DFS path: the frozen world at the
/// decision (to fork siblings from) plus the same bookkeeping node the
/// replay walk keeps.
struct Frame {
    /// `None` once the walk consumed the snapshot for the frame's last
    /// admissible alternative — such a frame is permanently inadmissible,
    /// so `deepest_admissible` never selects it again.
    snapshot: Option<Box<dyn ExploreSession>>,
    node: Node,
}

/// State-dedup key: canonical world fingerprint, the node's sorted sleep
/// seqs, and the *remaining* exploration budgets expressed as (depth,
/// preemptions-used). Two visits with equal keys explore byte-identical
/// subtrees, so pruning the second cannot change the verdict — and since
/// the search stops at the first violation, the first visit was
/// violation-free, so pruning cannot skip the first counterexample
/// either.
type DedupKey = (u64, Vec<u64>, usize, usize);

/// Choice points probed for fingerprint-only dedup at the start of a
/// descent whose preemption budget is spent. Commuting reorderings
/// converge within an event or two of the final deviation, so a small
/// window catches nearly every merge; anything larger mostly buys
/// full-state hashes along forced suffixes that nothing will match.
const PROBE_WINDOW: usize = 4;

/// The snapshot-forking DFS walk shared by [`explore_fork`] (whole tree)
/// and [`explore_parallel`] (one root shard per instance).
struct ForkDfs {
    budget: Budget,
    por: bool,
    visited: HashSet<DedupKey>,
    runs: usize,
    states: usize,
    dedup_hits: usize,
    forks: usize,
    progress: Vec<ProgressSample>,
    /// Run count at which the next [`ProgressSample`] is due.
    next_sample: usize,
}

impl ForkDfs {
    fn new(budget: Budget, por: bool) -> Self {
        ForkDfs {
            budget,
            por,
            visited: HashSet::new(),
            runs: 0,
            states: 0,
            dedup_hits: 0,
            forks: 0,
            progress: Vec::new(),
            next_sample: PROGRESS_INTERVAL,
        }
    }

    /// Records a [`ProgressSample`] once per [`PROGRESS_INTERVAL`] runs.
    /// Called between descents (never mid-descent), so `frontier_depth`
    /// is the settled DFS path length — a structural quantity, stable
    /// across thread counts.
    fn sample(&mut self, frontier_depth: usize) {
        if self.runs >= self.next_sample {
            self.progress.push(ProgressSample {
                runs: self.runs,
                states_explored: self.states,
                dedup_hits: self.dedup_hits,
                forks: self.forks,
                frontier_depth,
            });
            self.next_sample = (self.runs / PROGRESS_INTERVAL + 1) * PROGRESS_INTERVAL;
        }
    }

    /// Advances `session` to a terminal (or a dedup prune), growing
    /// `path` with a default-chosen frame per new choice point below
    /// `max_depth`. Returns the run's violation, if any.
    fn descend(
        &mut self,
        session: &mut Box<dyn ExploreSession>,
        path: &mut Vec<Frame>,
        preemptions: usize,
    ) -> Option<Violation> {
        // Forced steps from the next `advance` belong to the frame whose
        // choice was just resolved; once frames stop being pushed (depth
        // cap or a failed fork) deeper forced steps belong to uncreated
        // nodes and must not overwrite an ancestor's.
        let mut attribute = true;
        // A fork failure mid-descent stops frame creation for the rest of
        // the run: a frame whose true parent is missing would inherit the
        // wrong sleep set.
        let mut forkable = true;
        // With the preemption budget already spent, every frame this
        // descent would push is permanently inadmissible: its default is
        // tried and any alternative would need one more preemption. Skip
        // the fork/fingerprint/dedup work entirely — the descent still
        // contributes exactly one run either way (a dedup prune and a
        // default run to terminal both count once), so `runs`, DFS order,
        // and verdicts are unchanged; only states/dedup/forks counters
        // shrink. This is what makes forking cheaper than replay: the
        // leaf-level spine of the tree, where most choice points live,
        // pays no snapshot cost.
        let deviable = preemptions < self.budget.max_preemptions;
        // Budget-spent descents still get a short fingerprint-only dedup
        // window right after their last deviation: commuting reorderings
        // converge to the first visit's state within a few events, so the
        // first probes catch nearly all merges, while a bounded window
        // keeps worlds with long forced suffixes (hundreds of choice
        // points per run) from paying a full-state hash at every one.
        let mut probes = if deviable { 0 } else { PROBE_WINDOW };
        loop {
            let (state, forced) = session.advance();
            if attribute {
                if let Some(last) = path.last_mut() {
                    last.node.forced_after = forced;
                }
            }
            match state {
                SessionState::Done => {
                    self.runs += 1;
                    return session.violation();
                }
                SessionState::Choice => {
                    let cp = session.choice().expect("Choice state has a choice point");
                    attribute = false;
                    if forkable && deviable && path.len() < self.budget.max_depth {
                        let sleep = match (self.por, path.last()) {
                            (true, Some(parent)) => child_sleep(&parent.node, &cp),
                            _ => Vec::new(),
                        };
                        if let Some(fp) = session.fingerprint() {
                            let mut sleep_seqs: Vec<u64> =
                                sleep.iter().map(|s| s.seq).collect();
                            sleep_seqs.sort_unstable();
                            if !self.visited.insert((fp, sleep_seqs, path.len(), preemptions)) {
                                self.dedup_hits += 1;
                                self.runs += 1;
                                return None;
                            }
                        }
                        self.states += 1;
                        if let Some(snapshot) = session.fork() {
                            self.forks += 1;
                            path.push(Frame {
                                snapshot: Some(snapshot),
                                node: node_from(&cp, Vec::new(), sleep),
                            });
                            attribute = true;
                        } else {
                            forkable = false;
                        }
                    } else if probes > 0 {
                        // The continuation from here is fully determined
                        // (all defaults to terminal — no frame below can
                        // ever deviate), so a state seen before, under
                        // *any* history, proves this descent ends in the
                        // same violation-free terminal the first visit
                        // reached. Fingerprint-only dedup — no fork, no
                        // frame — turns the suffix walk into one hash
                        // probe. `usize::MAX` namespaces these keys away
                        // from frame-creation keys, where remaining depth
                        // budget genuinely matters; the sleep set is
                        // irrelevant for the same no-deviation reason.
                        probes -= 1;
                        if let Some(fp) = session.fingerprint() {
                            if !self.visited.insert((fp, Vec::new(), usize::MAX, preemptions)) {
                                self.dedup_hits += 1;
                                self.runs += 1;
                                return None;
                            }
                        }
                    }
                    session.choose(0);
                }
            }
        }
    }

    /// Runs the DFS from a session positioned just past `path`'s last
    /// decision (or a fresh start with an empty path).
    fn run(mut self, mut session: Box<dyn ExploreSession>, mut path: Vec<Frame>) -> Explored {
        let preemptions = path.iter().filter(|f| f.node.chosen != 0).count();
        if let Some(v) = self.descend(&mut session, &mut path, preemptions) {
            return self.finish(&path, Some(v), false);
        }
        while self.runs < self.budget.max_runs {
            self.sample(path.len());
            let Some((depth, alt)) = self.deepest_admissible(&path) else {
                return self.finish(&path, None, true);
            };
            // Same sibling-completion bookkeeping as the replay walk.
            if let Some(ev) = path[depth].node.executed() {
                path[depth].node.done.push(ev);
            }
            path[depth].node.tried[alt] = true;
            path[depth].node.chosen = alt;
            path.truncate(depth + 1);
            let above = path[..depth].iter().filter(|f| f.node.chosen != 0).count();
            let session = if first_admissible(&path[depth].node, above, self.budget).is_none() {
                // That was the frame's last admissible alternative:
                // nothing will ever fork from it again, so consume the
                // snapshot instead of cloning it.
                path[depth].snapshot.take()
            } else {
                let forked = path[depth].snapshot.as_ref().and_then(|s| s.fork());
                if forked.is_some() {
                    self.forks += 1;
                }
                forked
            };
            let Some(mut session) = session else {
                // A snapshot that forked once refusing to fork again is
                // out of contract; skip the alternative rather than die.
                continue;
            };
            session.choose(alt);
            let preemptions = path.iter().filter(|f| f.node.chosen != 0).count();
            if let Some(v) = self.descend(&mut session, &mut path, preemptions) {
                return self.finish(&path, Some(v), false);
            }
        }
        self.finish(&path, None, false)
    }

    fn deepest_admissible(&self, path: &[Frame]) -> Option<(usize, usize)> {
        for depth in (0..path.len().min(self.budget.max_depth)).rev() {
            let preemptions = path[..depth].iter().filter(|f| f.node.chosen != 0).count();
            if let Some(alt) = first_admissible(&path[depth].node, preemptions, self.budget) {
                return Some((depth, alt));
            }
        }
        None
    }

    fn finish(self, path: &[Frame], violation: Option<Violation>, exhausted: bool) -> Explored {
        let counterexample = violation.map(|v| {
            // Choices beyond the deepest frame are all defaults, which
            // `Counterexample::new` trims — same plan the replay walk
            // reports for this schedule.
            let plan: Vec<usize> = path.iter().map(|f| f.node.chosen).collect();
            Counterexample::new(&plan, v)
        });
        Explored {
            runs: self.runs,
            states_explored: self.states,
            dedup_hits: self.dedup_hits,
            forks: self.forks,
            counterexample,
            exhausted,
            progress: self.progress,
        }
    }
}

/// Explores via snapshot forking, or `None` when the target does not
/// support sessions (then the caller replays).
pub fn explore_fork(target: &mut dyn Target, budget: Budget) -> Option<Explored> {
    let por = target.reduction_safe();
    let session = target.session()?;
    Some(ForkDfs::new(budget, por).run(session, Vec::new()))
}

/// Explores `build`'s target with the DFS frontier sharded over the root
/// choice point, one shard per root alternative, fanned across
/// `DDS_THREADS` workers ([`dds_sim::parallel::parallel_map`]).
///
/// Shards are defined by the tree's structure (the root width), never by
/// the worker count, and results merge in shard order with accumulation
/// stopping at the first violating shard — so the outcome is
/// byte-identical at any `DDS_THREADS` value. Each shard gets
/// `max(1, max_runs / shards)` runs; state dedup is per-shard (shards
/// share no memory). Falls back to the sequential [`explore`] when the
/// target has no session support, when `DDS_EXPLORE=replay`, or when the
/// budget forbids deviating at the root.
pub fn explore_parallel(build: fn() -> Box<dyn Target>, budget: Budget) -> Explored {
    explore_parallel_with(dds_sim::parallel::thread_count(), build, budget)
}

/// [`explore_parallel`] with an explicit worker count, so tests can pin
/// thread-count invariance without touching the environment.
pub fn explore_parallel_with(
    threads: usize,
    build: fn() -> Box<dyn Target>,
    budget: Budget,
) -> Explored {
    let mut probe = build();
    if configured_explore_mode() == ExploreMode::Replay {
        return explore(probe.as_mut(), budget);
    }
    let Some(mut session) = probe.session() else {
        return explore(probe.as_mut(), budget);
    };
    // Learn the root width from a probe descent to the first choice.
    let (state, _) = session.advance();
    if state == SessionState::Done {
        // No choice points at all: the single deterministic run is the
        // whole space.
        let counterexample = session
            .violation()
            .map(|v| Counterexample::new(&[], v));
        let exhausted = counterexample.is_none();
        return Explored {
            runs: 1,
            states_explored: 0,
            dedup_hits: 0,
            forks: 0,
            counterexample,
            exhausted,
            progress: Vec::new(),
        };
    }
    let width = session.choice().expect("Choice state has a choice point").width;
    drop(session);
    drop(probe);

    let shards = if budget.max_preemptions == 0 || budget.max_depth == 0 {
        // Root deviations are inadmissible: the whole tree is one shard.
        1
    } else {
        width
    };
    let shard_budget = Budget {
        max_runs: (budget.max_runs / shards).max(1),
        ..budget
    };

    let results = dds_sim::parallel::parallel_map_with(threads, (0..shards).collect(), |k| {
        let mut target = build();
        let por = target.reduction_safe();
        let Some(mut session) = target.session() else {
            return explore(target.as_mut(), shard_budget);
        };
        let (state, _) = session.advance();
        if state == SessionState::Done {
            let counterexample = session.violation().map(|v| Counterexample::new(&[], v));
            let exhausted = counterexample.is_none();
            return Explored {
                runs: 1,
                states_explored: 0,
                dedup_hits: 0,
                forks: 0,
                counterexample,
                exhausted,
                progress: Vec::new(),
            };
        }
        let cp = session.choice().expect("Choice state has a choice point");
        // Shard k owns the subtree where the root dispatches alternative
        // k. Reconstruct the root node exactly as the sequential walk
        // would see it when it reaches that alternative: siblings 0..k
        // completed (their executed events in `done`, feeding the sleep
        // sets below), every root alternative marked tried so the shard
        // never leaves its subtree.
        let mut node = node_from(&cp, Vec::new(), Vec::new());
        node.chosen = k;
        node.tried = vec![true; node.width];
        node.done = cp.ready.iter().take(k).copied().collect();
        let Some(snapshot) = session.fork() else {
            return explore(target.as_mut(), shard_budget);
        };
        let path = vec![Frame {
            snapshot: Some(snapshot),
            node,
        }];
        let mut dfs = ForkDfs::new(shard_budget, por);
        dfs.forks += 1;
        session.choose(k);
        dfs.run(session, path)
    });

    let mut total = Explored {
        runs: 0,
        states_explored: 0,
        dedup_hits: 0,
        forks: 0,
        counterexample: None,
        exhausted: true,
        progress: Vec::new(),
    };
    for shard in results {
        total.runs += shard.runs;
        total.states_explored += shard.states_explored;
        total.dedup_hits += shard.dedup_hits;
        total.forks += shard.forks;
        // Samples concatenate in shard order (shards are defined by the
        // root width, not the worker count), keeping the merged vector
        // thread-count invariant like every other field.
        total.progress.extend(shard.progress.iter().copied());
        if shard.counterexample.is_some() {
            // Mirror the sequential early stop: later shards' work is
            // discarded (they ran, but the report is deterministic).
            total.counterexample = shard.counterexample;
            total.exhausted = false;
            break;
        }
        if !shard.exhausted {
            total.exhausted = false;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Violation;
    use std::path::Path;

    /// A synthetic target over an explicit decision tree: `widths[k]` is
    /// the width of the `k`-th choice point; the property fails exactly on
    /// the `bad` decision vector.
    struct TreeTarget {
        widths: Vec<usize>,
        bad: Option<Vec<usize>>,
        runs_seen: Vec<Vec<usize>>,
    }

    impl TreeTarget {
        fn new(widths: Vec<usize>, bad: Option<Vec<usize>>) -> Self {
            TreeTarget {
                widths,
                bad,
                runs_seen: Vec::new(),
            }
        }
    }

    impl Target for TreeTarget {
        fn name(&self) -> &str {
            "tree"
        }

        fn run(&mut self, plan: &[usize]) -> RunReport {
            let resolved: Vec<usize> = self
                .widths
                .iter()
                .enumerate()
                .map(|(k, &w)| plan.get(k).copied().unwrap_or(0).min(w - 1))
                .collect();
            self.runs_seen.push(resolved.clone());
            let choices = self
                .widths
                .iter()
                .zip(&resolved)
                .map(|(&width, &chosen)| ChoicePoint {
                    at: dds_core::time::Time::ZERO,
                    epoch: 0,
                    width,
                    chosen,
                    ready: Vec::new(),
                })
                .collect();
            let violation = (self.bad.as_deref() == Some(&resolved)).then(|| Violation {
                reason: "bad schedule reached".into(),
                details: format!("{resolved:?}"),
            });
            RunReport { choices, violation }
        }

        fn dump_counterexample(&mut self, _: &[usize], _: &Path, _: &str) {}
    }

    #[test]
    fn exhausts_a_small_tree() {
        let mut t = TreeTarget::new(vec![2, 3], None);
        let out = explore(
            &mut t,
            Budget {
                max_runs: 100,
                max_depth: 8,
                max_preemptions: 8,
            },
        );
        assert!(out.exhausted);
        assert!(out.counterexample.is_none());
        assert_eq!(out.runs, 6, "2 × 3 schedules, each run once");
        let mut seen = t.runs_seen.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "no schedule visited twice");
    }

    #[test]
    fn finds_a_planted_violation() {
        let mut t = TreeTarget::new(vec![2, 2, 2], Some(vec![1, 0, 1]));
        let out = explore(&mut t, Budget::default());
        let ce = out.counterexample.expect("must find the planted schedule");
        assert_eq!(ce.plan, vec![1, 0, 1]);
        assert_eq!(ce.preemptions, 2);
    }

    #[test]
    fn preemption_bound_prunes() {
        // The planted violation needs 3 preemptions; a 2-preemption budget
        // must exhaust without finding it.
        let mut t = TreeTarget::new(vec![2, 2, 2], Some(vec![1, 1, 1]));
        let out = explore(
            &mut t,
            Budget {
                max_runs: 1000,
                max_depth: 8,
                max_preemptions: 2,
            },
        );
        assert!(out.counterexample.is_none());
        assert!(out.exhausted);
        let out2 = explore(
            &mut TreeTarget::new(vec![2, 2, 2], Some(vec![1, 1, 1])),
            Budget {
                max_runs: 1000,
                max_depth: 8,
                max_preemptions: 3,
            },
        );
        assert!(out2.counterexample.is_some());
    }

    #[test]
    fn progress_samples_land_on_interval_boundaries() {
        // 4^5 = 1024 schedules against a 600-run budget: the replay walk
        // must cross the 256- and 512-run sample points exactly once each.
        let mut t = TreeTarget::new(vec![4, 4, 4, 4, 4], None);
        let out = explore(
            &mut t,
            Budget {
                max_runs: 600,
                max_depth: 8,
                max_preemptions: 8,
            },
        );
        assert_eq!(out.runs, 600);
        assert_eq!(out.progress.len(), 2, "samples at ≥256 and ≥512 runs");
        assert!(out.progress.windows(2).all(|w| w[0].runs < w[1].runs));
        for s in &out.progress {
            assert!(s.runs >= PROGRESS_INTERVAL);
            assert!(s.dedup_ratio() == 0.0, "replay mode never dedups");
            assert!(s.frontier_depth <= 5);
        }
    }

    #[test]
    fn run_budget_is_a_hard_cap() {
        let mut t = TreeTarget::new(vec![4, 4, 4, 4], None);
        let out = explore(
            &mut t,
            Budget {
                max_runs: 10,
                max_depth: 8,
                max_preemptions: 8,
            },
        );
        assert_eq!(out.runs, 10);
        assert!(!out.exhausted);
    }
}
