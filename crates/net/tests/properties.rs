//! Property-based tests for the knowledge-graph substrate: structural
//! invariants that must hold on every graph, checked on random
//! Erdős–Rényi instances and random mutation sequences.

use std::collections::BTreeSet;

use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::Time;
use dds_net::algo::{
    articulation_points, bfs_distances, components, diameter, diameter_double_sweep,
    is_connected, shortest_path,
};
use dds_net::dynamic::{AttachRule, RepairRule};
use dds_net::generate;
use dds_net::graph::Graph;
use dds_net::tvg::TimeVaryingGraph;
use proptest::prelude::*;

fn pid(n: u64) -> ProcessId {
    ProcessId::from_raw(n)
}

/// A random ER graph described by (n, edge probability numerator, seed).
fn er_strategy() -> impl Strategy<Value = Graph> {
    (2usize..24, 0u64..100, 0u64..10_000).prop_map(|(n, p, seed)| {
        let mut rng = Rng::seeded(seed);
        generate::erdos_renyi(n, p as f64 / 100.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BFS distance is symmetric on undirected graphs.
    #[test]
    fn bfs_is_symmetric(g in er_strategy()) {
        let nodes: Vec<ProcessId> = g.nodes().collect();
        for &u in nodes.iter().take(4) {
            let du = bfs_distances(&g, u);
            for (&v, &d) in du.iter().take(6) {
                let dv = bfs_distances(&g, v);
                prop_assert_eq!(dv.get(&u), Some(&d), "d({}, {}) asymmetric", u, v);
            }
        }
    }

    /// Components partition the node set, and each is internally connected.
    #[test]
    fn components_partition_nodes(g in er_strategy()) {
        let comps = components(&g);
        let mut seen = BTreeSet::new();
        for comp in &comps {
            for &n in comp {
                prop_assert!(seen.insert(n), "{n} in two components");
            }
            let sub = g.induced(comp);
            prop_assert!(is_connected(&sub));
        }
        prop_assert_eq!(seen.len(), g.node_count());
    }

    /// The double-sweep heuristic never exceeds the exact diameter and is
    /// at least half of it.
    #[test]
    fn double_sweep_bounds_diameter(g in er_strategy()) {
        if let Some(exact) = diameter(&g) {
            let sweep = diameter_double_sweep(&g).expect("connected");
            prop_assert!(sweep <= exact);
            prop_assert!(2 * sweep >= exact, "sweep {sweep} < half of {exact}");
        }
    }

    /// Shortest paths have consistent length with BFS and valid edges.
    #[test]
    fn shortest_paths_are_paths(g in er_strategy()) {
        let nodes: Vec<ProcessId> = g.nodes().collect();
        if nodes.len() < 2 { return Ok(()); }
        let (u, v) = (nodes[0], nodes[nodes.len() - 1]);
        match shortest_path(&g, u, v) {
            Some(path) => {
                prop_assert_eq!(path.first(), Some(&u));
                prop_assert_eq!(path.last(), Some(&v));
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]), "non-edge in path");
                }
                let d = bfs_distances(&g, u);
                prop_assert_eq!(path.len() - 1, d[&v], "not shortest");
            }
            None => {
                prop_assert!(!bfs_distances(&g, u).contains_key(&v));
            }
        }
    }

    /// Random-k attachment into a connected graph preserves connectivity.
    #[test]
    fn random_k_attach_preserves_connectivity(
        n in 3usize..16, k in 1usize..4, joins in 1usize..20, seed in 0u64..10_000
    ) {
        let mut g = generate::ring(n);
        let mut rng = Rng::seeded(seed);
        for j in 0..joins {
            AttachRule::RandomK(k).attach(&mut g, pid((n + j) as u64), &mut rng);
        }
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.node_count(), n + joins);
    }

    /// Bridged departures from a connected graph keep it connected.
    #[test]
    fn bridged_departures_preserve_connectivity(
        n in 4usize..16, leaves in 1usize..3, seed in 0u64..10_000
    ) {
        let mut g = generate::ring(n);
        let mut rng = Rng::seeded(seed);
        for _ in 0..leaves.min(n - 2) {
            let nodes: Vec<ProcessId> = g.nodes().collect();
            let &victim = rng.choose(&nodes).expect("nonempty");
            RepairRule::BridgeNeighbors.detach(&mut g, victim);
        }
        prop_assert!(is_connected(&g), "bridging lost connectivity");
    }

    /// On a static TVG, journey arrival times equal BFS distances.
    #[test]
    fn static_tvg_journeys_match_bfs(g in er_strategy()) {
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(Time::ZERO, g.clone());
        let Some(source) = g.nodes().next() else { return Ok(()); };
        let arrivals = tvg.earliest_arrivals(source, Time::ZERO, Time::from_ticks(64));
        let distances = bfs_distances(&g, source);
        for (node, d) in distances {
            prop_assert_eq!(
                arrivals.get(&node).map(|t| t.as_ticks() as usize),
                Some(d),
                "journey/BFS mismatch at {}", node
            );
        }
    }

    /// Edge count equals the handshake sum of degrees.
    #[test]
    fn handshake_lemma(g in er_strategy()) {
        let degree_sum: usize = g.nodes().map(|n| g.degree(n).unwrap()).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Articulation points characterize disconnection-by-removal exactly
    /// (on connected graphs): removing a cut vertex disconnects, removing
    /// any other vertex does not.
    #[test]
    fn articulation_points_are_exact(g in er_strategy()) {
        if !is_connected(&g) || g.node_count() < 3 {
            return Ok(());
        }
        let cut = articulation_points(&g);
        for node in g.nodes() {
            let mut h = g.clone();
            h.remove_node(node);
            prop_assert_eq!(
                !is_connected(&h),
                cut.contains(&node),
                "articulation mismatch at {}", node
            );
        }
    }
}
