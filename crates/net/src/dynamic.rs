//! Dynamic maintenance of the knowledge graph under churn.
//!
//! When an entity joins a dynamic system it learns a few neighbors — how it
//! picks them is the [`AttachRule`]. When an entity leaves, its neighbors
//! lose an edge and the overlay may need repair — the [`RepairRule`].
//! Together they determine whether the geography-dimension guarantees
//! (connectivity, bounded diameter) actually *hold* along a run, which is
//! what separates the solvable dynamic classes from the unsolvable ones.

use std::collections::BTreeSet;
use std::fmt;

use dds_core::process::ProcessId;
use dds_core::rng::Rng;

use crate::graph::Graph;

/// How a joining process selects its initial neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachRule {
    /// Connect to `k` members chosen uniformly at random (or all members if
    /// fewer than `k` are present).
    RandomK(usize),
    /// Connect to the most recently joined member only, growing a line —
    /// the adversarial rule that makes the diameter unbounded (class C4).
    Chain,
    /// Connect to every current member (maintains complete knowledge).
    All,
}

impl AttachRule {
    /// Applies the rule: inserts `joiner` into `graph` and wires its initial
    /// edges. Returns the chosen neighbors.
    ///
    /// The first process to join any overlay necessarily gets no neighbors.
    pub fn attach(
        &self,
        graph: &mut Graph,
        joiner: ProcessId,
        rng: &mut Rng,
    ) -> BTreeSet<ProcessId> {
        let members: Vec<ProcessId> = graph.nodes().collect();
        graph.add_node(joiner);
        let chosen: Vec<ProcessId> = match self {
            AttachRule::RandomK(k) => {
                // Partial Fisher–Yates: O(k), not O(members).
                let mut pool = members;
                let take = (*k).min(pool.len());
                for i in 0..take {
                    let j = i + rng.index(pool.len() - i);
                    pool.swap(i, j);
                }
                pool.truncate(take);
                pool
            }
            AttachRule::Chain => {
                // "Most recently joined" = largest identity, since the
                // identity source is monotone.
                members.iter().copied().max().into_iter().collect()
            }
            AttachRule::All => members,
        };
        for &n in &chosen {
            graph.add_edge(joiner, n);
        }
        chosen.into_iter().collect()
    }
}

impl fmt::Display for AttachRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachRule::RandomK(k) => write!(f, "attach to {k} random members"),
            AttachRule::Chain => write!(f, "attach to newest member (chain)"),
            AttachRule::All => write!(f, "attach to all members"),
        }
    }
}

/// How the overlay reacts when a member departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairRule {
    /// Do nothing: the neighbors simply lose an edge. Connectivity may
    /// break — this is what the partitionable class C7 looks like in
    /// practice.
    None,
    /// Bridge the hole: the departed member's neighbors are pairwise
    /// connected in a cycle, preserving connectivity through the gap.
    BridgeNeighbors,
}

impl RepairRule {
    /// Applies the rule: removes `leaver` from `graph` and optionally
    /// repairs around the hole. Returns the former neighbors in identity
    /// order.
    pub fn detach(&self, graph: &mut Graph, leaver: ProcessId) -> Vec<ProcessId> {
        let neighbors = graph.remove_node(leaver);
        if let RepairRule::BridgeNeighbors = self {
            let ring = &neighbors;
            if ring.len() >= 2 {
                for i in 0..ring.len() {
                    let a = ring[i];
                    let b = ring[(i + 1) % ring.len()];
                    if a != b && !graph.has_edge(a, b) {
                        graph.add_edge(a, b);
                    }
                }
            }
        }
        neighbors
    }
}

impl fmt::Display for RepairRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairRule::None => write!(f, "no repair"),
            RepairRule::BridgeNeighbors => write!(f, "bridge neighbors on departure"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    #[test]
    fn first_joiner_has_no_neighbors() {
        let mut g = Graph::new();
        let mut rng = Rng::seeded(0);
        let chosen = AttachRule::RandomK(3).attach(&mut g, pid(0), &mut rng);
        assert!(chosen.is_empty());
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn random_k_attaches_min_of_k_and_members() {
        let mut g = Graph::new();
        let mut rng = Rng::seeded(1);
        for i in 0..5 {
            AttachRule::RandomK(2).attach(&mut g, pid(i), &mut rng);
        }
        // Sixth joiner gets exactly 2 neighbors.
        let chosen = AttachRule::RandomK(2).attach(&mut g, pid(5), &mut rng);
        assert_eq!(chosen.len(), 2);
        // Second joiner got 1 (only 1 member existed).
        assert!(g.degree(pid(5)) >= Some(2));
    }

    #[test]
    fn random_k_keeps_overlay_connected() {
        let mut g = Graph::new();
        let mut rng = Rng::seeded(2);
        for i in 0..50 {
            AttachRule::RandomK(3).attach(&mut g, pid(i), &mut rng);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn chain_builds_a_line() {
        let mut g = Graph::new();
        let mut rng = Rng::seeded(3);
        for i in 0..10 {
            AttachRule::Chain.attach(&mut g, pid(i), &mut rng);
        }
        // A line: two endpoints of degree 1, the rest degree 2.
        let degrees: Vec<usize> = g.nodes().map(|n| g.degree(n).unwrap()).collect();
        assert_eq!(degrees.iter().filter(|&&d| d == 1).count(), 2);
        assert_eq!(degrees.iter().filter(|&&d| d == 2).count(), 8);
        assert_eq!(crate::algo::diameter(&g), Some(9));
    }

    #[test]
    fn attach_all_maintains_complete_graph() {
        let mut g = Graph::new();
        let mut rng = Rng::seeded(4);
        for i in 0..6 {
            AttachRule::All.attach(&mut g, pid(i), &mut rng);
        }
        assert_eq!(g.edge_count(), 15);
        assert_eq!(crate::algo::diameter(&g), Some(1));
    }

    #[test]
    fn no_repair_can_disconnect() {
        // Star around p0: removing the hub shatters the graph.
        let mut g = Graph::new();
        g.add_node(pid(0));
        for i in 1..5 {
            g.add_node(pid(i));
            g.add_edge(pid(0), pid(i));
        }
        RepairRule::None.detach(&mut g, pid(0));
        assert!(!is_connected(&g));
    }

    #[test]
    fn bridging_preserves_connectivity() {
        let mut g = Graph::new();
        g.add_node(pid(0));
        for i in 1..5 {
            g.add_node(pid(i));
            g.add_edge(pid(0), pid(i));
        }
        let nbrs = RepairRule::BridgeNeighbors.detach(&mut g, pid(0));
        assert_eq!(nbrs.len(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn bridging_a_leaf_is_harmless() {
        let mut g = crate::generate::path(3);
        RepairRule::BridgeNeighbors.detach(&mut g, pid(2));
        assert!(is_connected(&g));
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn detach_absent_node_is_noop() {
        let mut g = crate::generate::ring(4);
        let nbrs = RepairRule::BridgeNeighbors.detach(&mut g, pid(99));
        assert!(nbrs.is_empty());
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn display_texts() {
        assert!(AttachRule::RandomK(3).to_string().contains("3"));
        assert!(RepairRule::BridgeNeighbors.to_string().contains("bridge"));
    }
}
