//! Knowledge-graph generators.
//!
//! Experiments instantiate the geography dimension with concrete graph
//! families. Deterministic families (complete, ring, path, torus) realize
//! known diameters for the E1/E3 sweeps; random families (Erdős–Rényi,
//! random geometric, Watts–Strogatz) model unstructured overlays. All
//! random generators draw from [`dds_core::rng::Rng`], so a `(family,
//! seed)` pair always yields the same graph.

use dds_core::process::ProcessId;
use dds_core::rng::Rng;

use crate::graph::Graph;

fn nodes(n: usize) -> Vec<ProcessId> {
    (0..n as u64).map(ProcessId::from_raw).collect()
}

fn empty_with_nodes(ids: &[ProcessId]) -> Graph {
    let mut g = Graph::new();
    for &id in ids {
        g.add_node(id);
    }
    g
}

/// The complete graph on `n` nodes `p0 … p(n-1)` — the knowledge graph of a
/// system with complete knowledge (diameter 1).
pub fn complete(n: usize) -> Graph {
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(ids[i], ids[j]);
        }
    }
    g
}

/// A simple path `p0 - p1 - … - p(n-1)` (diameter `n-1`).
pub fn path(n: usize) -> Graph {
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

/// A ring on `n >= 3` nodes (diameter `⌊n/2⌋`).
///
/// # Panics
///
/// Panics when `n < 3` (a ring needs at least a triangle).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    for i in 0..n {
        g.add_edge(ids[i], ids[(i + 1) % n]);
    }
    g
}

/// A `rows × cols` torus (wrap-around grid); diameter
/// `⌊rows/2⌋ + ⌊cols/2⌋`. Every node has degree 4 when both sides are at
/// least 3.
///
/// # Panics
///
/// Panics when either side is zero.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "torus sides must be positive");
    let n = rows * cols;
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    let idx = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            let right = idx(r, (c + 1) % cols);
            let down = idx((r + 1) % rows, c);
            if right != idx(r, c) && !g.has_edge(idx(r, c), right) {
                g.add_edge(idx(r, c), right);
            }
            if down != idx(r, c) && !g.has_edge(idx(r, c), down) {
                g.add_edge(idx(r, c), down);
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut Rng) -> Graph {
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.chance(p) {
                g.add_edge(ids[i], ids[j]);
            }
        }
    }
    g
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// when their Euclidean distance is at most `radius`. The standard model of
/// a sensor field — the motivating scenario for neighborhood knowledge.
pub fn random_geometric(n: usize, radius: f64, rng: &mut Rng) -> Graph {
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.unit_f64(), rng.unit_f64())).collect();
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(ids[i], ids[j]);
            }
        }
    }
    g
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its `k` nearest neighbors on each side, then each edge is rewired with
/// probability `beta`.
///
/// # Panics
///
/// Panics when `n < 2 * k + 2` (the lattice would be degenerate) or `k == 0`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut Rng) -> Graph {
    assert!(k > 0, "k must be positive");
    assert!(n >= 2 * k + 2, "need n >= 2k + 2 for a small world");
    let ids = nodes(n);
    let mut g = empty_with_nodes(&ids);
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            if !g.has_edge(ids[i], ids[j]) {
                g.add_edge(ids[i], ids[j]);
            }
        }
    }
    // Rewire.
    let edges: Vec<_> = g.edges().collect();
    for (a, b) in edges {
        if rng.chance(beta) {
            // Pick a new endpoint for a, avoiding self-loops and multi-edges.
            for _ in 0..16 {
                let c = ids[rng.index(n)];
                if c != a && !g.has_edge(a, c) {
                    g.remove_edge(a, b);
                    g.add_edge(a, c);
                    break;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{diameter, is_connected};

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn complete_trivial_sizes() {
        assert_eq!(complete(0).node_count(), 0);
        let g = complete(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn path_diameter_is_length() {
        let g = path(10);
        assert_eq!(diameter(&g), Some(9));
        assert_eq!(g.edge_count(), 9);
    }

    #[test]
    fn ring_diameter_is_half() {
        assert_eq!(diameter(&ring(8)), Some(4));
        assert_eq!(diameter(&ring(9)), Some(4));
        assert_eq!(ring(5).edge_count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        ring(2);
    }

    #[test]
    fn torus_structure() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        // 4-regular: 20 * 4 / 2 = 40 edges.
        assert_eq!(g.edge_count(), 40);
        assert_eq!(diameter(&g), Some(2 + 2));
        assert!(is_connected(&g));
    }

    #[test]
    fn degenerate_torus_rows() {
        // 1 x n torus degenerates to a ring-ish structure without panicking.
        let g = torus(1, 5);
        assert_eq!(g.node_count(), 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = Rng::seeded(1);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(20, 0.3, &mut Rng::seeded(7));
        let b = erdos_renyi(20, 0.3, &mut Rng::seeded(7));
        assert_eq!(a, b);
        let c = erdos_renyi(20, 0.3, &mut Rng::seeded(8));
        assert_ne!(a, c);
    }

    #[test]
    fn geometric_radius_extremes() {
        let mut rng = Rng::seeded(2);
        let sparse = random_geometric(15, 0.0, &mut rng);
        assert_eq!(sparse.edge_count(), 0);
        let dense = random_geometric(15, 1.5, &mut rng); // > sqrt(2): all pairs
        assert_eq!(dense.edge_count(), 15 * 14 / 2);
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        let mut rng = Rng::seeded(3);
        let n = 20;
        let k = 2;
        let g = watts_strogatz(n, k, 0.3, &mut rng);
        assert_eq!(g.node_count(), n);
        // Rewiring moves edges but never creates or destroys them (up to
        // rare rewire failures which keep the original edge).
        assert_eq!(g.edge_count(), n * k);
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let mut rng = Rng::seeded(4);
        let g = watts_strogatz(12, 2, 0.0, &mut rng);
        assert!(is_connected(&g));
        for node in g.nodes() {
            assert_eq!(g.degree(node), Some(4));
        }
    }
}
