//! Structural metrics of knowledge graphs, reported by the experiment
//! harness alongside protocol results.

use std::collections::BTreeMap;

use crate::graph::Graph;

/// Degree histogram: `degree -> number of nodes with that degree`.
pub fn degree_distribution(graph: &Graph) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for node in graph.nodes() {
        let d = graph.degree(node).expect("iterating own nodes");
        *hist.entry(d).or_insert(0) += 1;
    }
    hist
}

/// Mean degree, or `0.0` for an empty graph.
pub fn mean_degree(graph: &Graph) -> f64 {
    if graph.is_empty() {
        return 0.0;
    }
    2.0 * graph.edge_count() as f64 / graph.node_count() as f64
}

/// Global clustering coefficient: `3 × triangles / open triads`, or `0.0`
/// when the graph has no path of length two.
pub fn clustering_coefficient(graph: &Graph) -> f64 {
    let mut triangles = 0usize;
    let mut triads = 0usize;
    for u in graph.nodes() {
        let nbrs: Vec<_> = graph
            .neighbors(u)
            .expect("iterating own nodes")
            .to_vec();
        let d = nbrs.len();
        triads += d.saturating_sub(1) * d / 2;
        for i in 0..d {
            for j in (i + 1)..d {
                if graph.has_edge(nbrs[i], nbrs[j]) {
                    triangles += 1;
                }
            }
        }
    }
    if triads == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times.
        triangles as f64 / triads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn degree_distribution_of_ring() {
        let hist = degree_distribution(&generate::ring(6));
        assert_eq!(hist, BTreeMap::from([(2, 6)]));
    }

    #[test]
    fn mean_degree_values() {
        assert_eq!(mean_degree(&Graph::new()), 0.0);
        assert!((mean_degree(&generate::ring(6)) - 2.0).abs() < 1e-12);
        assert!((mean_degree(&generate::complete(5)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        assert!((clustering_coefficient(&generate::complete(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_ring_is_zero() {
        assert_eq!(clustering_coefficient(&generate::ring(8)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::new()), 0.0);
    }

    #[test]
    fn clustering_of_triangle_plus_tail() {
        // Triangle 0-1-2 plus edge 2-3.
        use dds_core::process::ProcessId;
        let pid = ProcessId::from_raw;
        let g: Graph = [
            (pid(0), pid(1)),
            (pid(1), pid(2)),
            (pid(0), pid(2)),
            (pid(2), pid(3)),
        ]
        .into_iter()
        .collect();
        // Triads: node0:1, node1:1, node2:3, node3:0 => 5; triangle corners: 3.
        assert!((clustering_coefficient(&g) - 3.0 / 5.0).abs() < 1e-12);
    }
}
