//! Time-varying graphs (TVGs) and temporal reachability.
//!
//! A dynamic system's knowledge graph is not one graph but a *sequence* of
//! graphs indexed by time. Whether a one-time query can succeed is a
//! question about **journeys**: can information travel from the initiator
//! to a stable node through edges that exist *when the message crosses
//! them*? A snapshot being connected at every instant is **not** enough for
//! a journey to exist within a deadline — the classic subtlety of dynamic
//! networks that the paper gestures at, made executable here.

use std::collections::{BTreeMap, BTreeSet};

use dds_core::process::ProcessId;
use dds_core::time::Time;

use crate::graph::Graph;

/// A time-varying graph: a piecewise-constant sequence of snapshots.
///
/// Snapshot `g_i` is in force during `[t_i, t_{i+1})`; the last snapshot
/// extends to infinity.
#[derive(Debug, Clone, Default)]
pub struct TimeVaryingGraph {
    snapshots: Vec<(Time, Graph)>,
}

impl TimeVaryingGraph {
    /// Creates an empty TVG (no snapshot: every query about it sees an
    /// empty graph).
    pub fn new() -> Self {
        TimeVaryingGraph::default()
    }

    /// Appends a snapshot taking effect at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not strictly later than the previous snapshot's
    /// instant.
    pub fn push(&mut self, at: Time, graph: Graph) {
        if let Some((last, _)) = self.snapshots.last() {
            assert!(*last < at, "snapshots must be pushed in increasing time");
        }
        self.snapshots.push((at, graph));
    }

    /// The snapshot in force at `t` (the latest one at or before `t`), or
    /// `None` before the first snapshot.
    pub fn at(&self, t: Time) -> Option<&Graph> {
        self.snapshots
            .iter()
            .rev()
            .find(|(start, _)| *start <= t)
            .map(|(_, g)| g)
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when no snapshot was pushed.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Earliest-arrival times of one-hop-per-tick journeys from `source`
    /// starting at `start`: a message can cross one currently-existing edge
    /// per tick. Returns, for each reachable node, the earliest tick at
    /// which it can be reached.
    ///
    /// This is the foremost-journey computation for discrete TVGs; it runs
    /// until `deadline` (inclusive).
    pub fn earliest_arrivals(
        &self,
        source: ProcessId,
        start: Time,
        deadline: Time,
    ) -> BTreeMap<ProcessId, Time> {
        let mut arrival: BTreeMap<ProcessId, Time> = BTreeMap::new();
        match self.at(start) {
            Some(g) if g.contains(source) => {
                arrival.insert(source, start);
            }
            _ => return arrival,
        }
        let mut frontier: BTreeSet<ProcessId> = BTreeSet::from([source]);
        let mut t = start;
        while t < deadline && !frontier.is_empty() {
            let next_t = Time::from_ticks(t.as_ticks() + 1);
            let Some(g) = self.at(t) else { break };
            let mut next_frontier = BTreeSet::new();
            for &u in &frontier {
                let Some(nbrs) = g.neighbors(u) else { continue };
                for &v in nbrs {
                    // The destination must still exist when the message
                    // lands.
                    let dest_alive = self.at(next_t).is_some_and(|g2| g2.contains(v));
                    if dest_alive && !arrival.contains_key(&v) {
                        arrival.insert(v, next_t);
                        next_frontier.insert(v);
                    }
                }
            }
            // Nodes already reached keep relaying as long as they exist.
            for (&node, _) in arrival.iter() {
                if self.at(next_t).is_some_and(|g2| g2.contains(node)) {
                    next_frontier.insert(node);
                }
            }
            frontier = next_frontier;
            t = next_t;
        }
        arrival
    }

    /// `true` when a journey from `source` reaches `target` within
    /// `[start, deadline]`.
    pub fn journey_exists(
        &self,
        source: ProcessId,
        target: ProcessId,
        start: Time,
        deadline: Time,
    ) -> bool {
        self.earliest_arrivals(source, start, deadline)
            .contains_key(&target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    #[test]
    fn static_tvg_behaves_like_bfs() {
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(0), generate::path(4));
        let arr = tvg.earliest_arrivals(pid(0), t(0), t(10));
        assert_eq!(arr[&pid(0)], t(0));
        assert_eq!(arr[&pid(1)], t(1));
        assert_eq!(arr[&pid(3)], t(3));
    }

    #[test]
    fn deadline_cuts_the_journey() {
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(0), generate::path(6));
        assert!(tvg.journey_exists(pid(0), pid(5), t(0), t(5)));
        assert!(!tvg.journey_exists(pid(0), pid(5), t(0), t(4)));
    }

    #[test]
    fn missing_source_reaches_nothing() {
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(0), generate::path(3));
        assert!(tvg.earliest_arrivals(pid(9), t(0), t(5)).is_empty());
        assert!(TimeVaryingGraph::new()
            .earliest_arrivals(pid(0), t(0), t(5))
            .is_empty());
    }

    #[test]
    fn edge_appearing_later_enables_journey() {
        // Snapshot 0: 0-1, 2 isolated. Snapshot at t=3: 1-2 appears.
        let mut g0 = generate::path(2);
        g0.add_node(pid(2));
        let mut g1 = g0.clone();
        g1.add_edge(pid(1), pid(2));
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(0), g0);
        tvg.push(t(3), g1);
        // Journey 0 -> 2 must wait at node 1 until the edge appears.
        let arr = tvg.earliest_arrivals(pid(0), t(0), t(10));
        assert_eq!(arr[&pid(1)], t(1));
        assert_eq!(arr[&pid(2)], t(4));
    }

    #[test]
    fn every_snapshot_connected_but_no_journey_backwards() {
        // The classic temporal asymmetry: edges 1-2 exist only BEFORE 0-1.
        // Journey 2 -> 0 exists, journey 0 -> 2 does not (within deadline).
        let mut g_early = Graph::new();
        for i in 0..3 {
            g_early.add_node(pid(i));
        }
        let mut g_late = g_early.clone();
        g_early.add_edge(pid(1), pid(2));
        g_late.add_edge(pid(0), pid(1));
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(0), g_early);
        tvg.push(t(1), g_late);
        assert!(tvg.journey_exists(pid(2), pid(0), t(0), t(3)));
        assert!(!tvg.journey_exists(pid(0), pid(2), t(0), t(3)));
    }

    #[test]
    fn node_departure_blocks_relay() {
        // 0-1-2 path, but node 1 disappears at t=1: node 2 unreachable.
        let g_full = generate::path(3);
        let mut g_gone = Graph::new();
        g_gone.add_node(pid(0));
        g_gone.add_node(pid(2));
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(0), g_full);
        tvg.push(t(1), g_gone);
        assert!(!tvg.journey_exists(pid(0), pid(2), t(0), t(10)));
        // Even node 1 is unreachable: it no longer exists when the message
        // would land.
        assert!(!tvg.journey_exists(pid(0), pid(1), t(0), t(10)));
    }

    #[test]
    #[should_panic(expected = "increasing time")]
    fn snapshots_must_increase() {
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(5), Graph::new());
        tvg.push(t(5), Graph::new());
    }

    #[test]
    fn at_picks_latest_snapshot() {
        let mut tvg = TimeVaryingGraph::new();
        tvg.push(t(2), generate::path(2));
        tvg.push(t(5), generate::path(3));
        assert!(tvg.at(t(0)).is_none());
        assert_eq!(tvg.at(t(2)).unwrap().node_count(), 2);
        assert_eq!(tvg.at(t(4)).unwrap().node_count(), 2);
        assert_eq!(tvg.at(t(5)).unwrap().node_count(), 3);
        assert_eq!(tvg.at(t(100)).unwrap().node_count(), 3);
        assert_eq!(tvg.len(), 2);
        assert!(!tvg.is_empty());
    }
}
