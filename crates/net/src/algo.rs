//! Graph algorithms used by the protocols and the experiment harness:
//! breadth-first distances, connectivity, components, diameter and
//! eccentricity.
//!
//! Everything here treats the graph as a snapshot; temporal questions (can
//! information travel through a *changing* graph?) live in
//! [`crate::tvg`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dds_core::process::ProcessId;

use crate::graph::Graph;

/// Breadth-first distances (in hops) from `source` to every reachable node.
///
/// Returns an empty map when `source` is not in the graph; otherwise the map
/// contains `source` with distance 0.
pub fn bfs_distances(graph: &Graph, source: ProcessId) -> BTreeMap<ProcessId, usize> {
    let mut dist = BTreeMap::new();
    if !graph.contains(source) {
        return dist;
    }
    dist.insert(source, 0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        let Some(nbrs) = graph.neighbors(u) else { continue };
        for &v in nbrs {
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The connected component containing `source` (empty when absent).
pub fn component_of(graph: &Graph, source: ProcessId) -> BTreeSet<ProcessId> {
    bfs_distances(graph, source).into_keys().collect()
}

/// All connected components, each sorted, ordered by their smallest member.
pub fn components(graph: &Graph) -> Vec<BTreeSet<ProcessId>> {
    let mut seen: BTreeSet<ProcessId> = BTreeSet::new();
    let mut comps = Vec::new();
    for node in graph.nodes() {
        if seen.contains(&node) {
            continue;
        }
        let comp = component_of(graph, node);
        seen.extend(comp.iter().copied());
        comps.push(comp);
    }
    comps
}

/// `true` when the graph is connected (the empty graph counts as
/// connected).
pub fn is_connected(graph: &Graph) -> bool {
    match graph.nodes().next() {
        None => true,
        Some(first) => component_of(graph, first).len() == graph.node_count(),
    }
}

/// The eccentricity of a node: its greatest BFS distance to any node of its
/// component. `None` when the node is absent.
pub fn eccentricity(graph: &Graph, node: ProcessId) -> Option<usize> {
    if !graph.contains(node) {
        return None;
    }
    Some(bfs_distances(graph, node).into_values().max().unwrap_or(0))
}

/// The exact diameter: the greatest eccentricity over all nodes.
///
/// Returns `None` for an empty or disconnected graph (infinite diameter).
/// Cost is `O(V · (V + E))`; fine for experiment-sized graphs.
pub fn diameter(graph: &Graph) -> Option<usize> {
    if graph.is_empty() || !is_connected(graph) {
        return None;
    }
    graph
        .nodes()
        .map(|n| eccentricity(graph, n).expect("node present"))
        .max()
}

/// A cheap lower bound on the diameter via the double-sweep heuristic:
/// BFS from an arbitrary node, then BFS from the farthest node found. Exact
/// on trees; a lower bound in general. `None` on empty/disconnected graphs.
pub fn diameter_double_sweep(graph: &Graph) -> Option<usize> {
    let first = graph.nodes().next()?;
    if !is_connected(graph) {
        return None;
    }
    let d1 = bfs_distances(graph, first);
    let (&far, _) = d1.iter().max_by_key(|(_, &d)| d)?;
    let d2 = bfs_distances(graph, far);
    d2.into_values().max()
}

/// Shortest path from `from` to `to` as a node sequence (inclusive), or
/// `None` when unreachable.
pub fn shortest_path(graph: &Graph, from: ProcessId, to: ProcessId) -> Option<Vec<ProcessId>> {
    if !graph.contains(from) || !graph.contains(to) {
        return None;
    }
    let mut prev: BTreeMap<ProcessId, ProcessId> = BTreeMap::new();
    let mut seen = BTreeSet::from([from]);
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        let Some(nbrs) = graph.neighbors(u) else { continue };
        for &v in nbrs {
            if seen.insert(v) {
                prev.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    /// 0 - 1 - 2 - 3 (a path), plus isolated 9.
    fn path_plus_isolated() -> Graph {
        let mut g: Graph = [(pid(0), pid(1)), (pid(1), pid(2)), (pid(2), pid(3))]
            .into_iter()
            .collect();
        g.add_node(pid(9));
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_plus_isolated();
        let d = bfs_distances(&g, pid(0));
        assert_eq!(d[&pid(0)], 0);
        assert_eq!(d[&pid(3)], 3);
        assert!(!d.contains_key(&pid(9)));
        assert!(bfs_distances(&g, pid(42)).is_empty());
    }

    #[test]
    fn components_found() {
        let g = path_plus_isolated();
        let comps = components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1], BTreeSet::from([pid(9)]));
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new()));
        assert_eq!(diameter(&Graph::new()), None);
    }

    #[test]
    fn single_node_diameter_zero() {
        let mut g = Graph::new();
        g.add_node(pid(0));
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(eccentricity(&g, pid(0)), Some(0));
    }

    #[test]
    fn path_diameter() {
        let g: Graph = [(pid(0), pid(1)), (pid(1), pid(2)), (pid(2), pid(3))]
            .into_iter()
            .collect();
        assert_eq!(diameter(&g), Some(3));
        // Double sweep is exact on trees.
        assert_eq!(diameter_double_sweep(&g), Some(3));
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let g = path_plus_isolated();
        assert_eq!(diameter(&g), None);
        assert_eq!(diameter_double_sweep(&g), None);
    }

    #[test]
    fn double_sweep_lower_bounds_exact() {
        // Cycle of 6: diameter 3.
        let mut g = Graph::new();
        for i in 0..6 {
            g.add_node(pid(i));
        }
        for i in 0..6 {
            g.add_edge(pid(i), pid((i + 1) % 6));
        }
        let exact = diameter(&g).unwrap();
        let sweep = diameter_double_sweep(&g).unwrap();
        assert_eq!(exact, 3);
        assert!(sweep <= exact);
        assert!(sweep >= 2);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_plus_isolated();
        let p = shortest_path(&g, pid(0), pid(3)).unwrap();
        assert_eq!(p, vec![pid(0), pid(1), pid(2), pid(3)]);
        assert_eq!(shortest_path(&g, pid(0), pid(9)), None);
        assert_eq!(shortest_path(&g, pid(0), pid(0)), Some(vec![pid(0)]));
        assert_eq!(shortest_path(&g, pid(0), pid(77)), None);
    }

    #[test]
    fn eccentricity_of_absent_node() {
        assert_eq!(eccentricity(&Graph::new(), pid(0)), None);
    }
}

/// Articulation points (cut vertices): nodes whose removal disconnects
/// their component. These are exactly the processes whose *departure*
/// partitions the stable part when the overlay has no repair rule — the
/// structural face of the connectivity dimension.
///
/// Iterative Tarjan low-link computation, `O(V + E)`.
pub fn articulation_points(graph: &Graph) -> BTreeSet<ProcessId> {
    use std::collections::BTreeMap;

    let mut disc: BTreeMap<ProcessId, usize> = BTreeMap::new();
    let mut low: BTreeMap<ProcessId, usize> = BTreeMap::new();
    let mut cut: BTreeSet<ProcessId> = BTreeSet::new();
    let mut counter = 0usize;

    for root in graph.nodes() {
        if disc.contains_key(&root) {
            continue;
        }
        // Iterative DFS frame: (node, parent, neighbor iterator index,
        // number of DFS children when node == root).
        let mut stack: Vec<(ProcessId, Option<ProcessId>, usize)> = vec![(root, None, 0)];
        let mut root_children = 0usize;
        disc.insert(root, counter);
        low.insert(root, counter);
        counter += 1;
        while let Some(&mut (u, parent, ref mut idx)) = stack.last_mut() {
            let nbrs: Vec<ProcessId> = graph
                .neighbors(u)
                .expect("node on stack exists")
                .to_vec();
            if *idx < nbrs.len() {
                let v = nbrs[*idx];
                *idx += 1;
                if Some(v) == parent {
                    continue;
                }
                match disc.get(&v) {
                    Some(&dv) => {
                        let lu = low[&u].min(dv);
                        low.insert(u, lu);
                    }
                    None => {
                        disc.insert(v, counter);
                        low.insert(v, counter);
                        counter += 1;
                        if u == root {
                            root_children += 1;
                        }
                        stack.push((v, Some(u), 0));
                    }
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    let lp = low[&p].min(low[&u]);
                    low.insert(p, lp);
                    if p != root && low[&u] >= disc[&p] {
                        cut.insert(p);
                    }
                }
            }
        }
        if root_children >= 2 {
            cut.insert(root);
        }
    }
    cut
}

#[cfg(test)]
mod articulation_tests {
    use super::*;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    #[test]
    fn path_interior_nodes_are_cut_vertices() {
        let g = crate::generate::path(5);
        let cut = articulation_points(&g);
        assert_eq!(
            cut,
            BTreeSet::from([pid(1), pid(2), pid(3)]),
            "every interior node of a path is an articulation point"
        );
    }

    #[test]
    fn cycles_have_no_cut_vertices() {
        assert!(articulation_points(&crate::generate::ring(8)).is_empty());
        assert!(articulation_points(&crate::generate::complete(6)).is_empty());
        assert!(articulation_points(&crate::generate::torus(3, 4)).is_empty());
    }

    #[test]
    fn star_hub_is_the_only_cut_vertex() {
        let mut g = Graph::new();
        g.add_node(pid(0));
        for i in 1..6 {
            g.add_node(pid(i));
            g.add_edge(pid(0), pid(i));
        }
        assert_eq!(articulation_points(&g), BTreeSet::from([pid(0)]));
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        // 0-1-2-0 and 2-3-4-2: node 2 is the bridge.
        let g: Graph = [
            (pid(0), pid(1)),
            (pid(1), pid(2)),
            (pid(0), pid(2)),
            (pid(2), pid(3)),
            (pid(3), pid(4)),
            (pid(2), pid(4)),
        ]
        .into_iter()
        .collect();
        assert_eq!(articulation_points(&g), BTreeSet::from([pid(2)]));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(articulation_points(&Graph::new()).is_empty());
        let mut g = Graph::new();
        g.add_node(pid(0));
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn removal_of_cut_vertex_disconnects() {
        let g = crate::generate::path(6);
        for node in articulation_points(&g) {
            let mut h = g.clone();
            h.remove_node(node);
            assert!(!is_connected(&h), "removing {node} should disconnect");
        }
    }

    #[test]
    fn removal_of_non_cut_vertex_keeps_connectivity() {
        let g = crate::generate::torus(3, 3);
        let cut = articulation_points(&g);
        for node in g.nodes() {
            if !cut.contains(&node) {
                let mut h = g.clone();
                h.remove_node(node);
                assert!(is_connected(&h), "removing non-cut {node} disconnected");
            }
        }
    }
}
