//! The knowledge graph: who knows whom.
//!
//! In the paper's geography dimension, each entity knows a few others — its
//! *neighbors*. [`Graph`] is the undirected graph of that relation over
//! [`ProcessId`]s. It is a mutable structure: churn adds and removes nodes
//! while queries are in flight, which is precisely the difficulty the
//! one-time query has to survive.
//!
//! The representation is sorted adjacency vectors in a `BTreeMap`, chosen
//! so that iteration order is deterministic — a requirement for
//! reproducible simulation (DESIGN.md §7) — while neighbor scans are
//! cache-friendly contiguous slices on the simulator's hottest path
//! (every actor callback reads a neighbor list). The edge count is cached
//! so `edge_count` is O(1) instead of a full adjacency walk.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dds_core::process::ProcessId;

/// An undirected graph over process identities.
///
/// # Examples
///
/// ```
/// use dds_core::process::ProcessId;
/// use dds_net::graph::Graph;
///
/// let mut g = Graph::new();
/// let (a, b) = (ProcessId::from_raw(0), ProcessId::from_raw(1));
/// g.add_node(a);
/// g.add_node(b);
/// g.add_edge(a, b);
/// assert_eq!(g.degree(a), Some(1));
/// assert!(g.has_edge(a, b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// Adjacency lists, each kept sorted by identity.
    adj: BTreeMap<ProcessId, Vec<ProcessId>>,
    /// Cached number of undirected edges.
    edges: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node with no neighbors. Idempotent.
    pub fn add_node(&mut self, node: ProcessId) {
        self.adj.entry(node).or_default();
    }

    /// Removes a node and every edge incident to it.
    ///
    /// Returns the former neighbors in identity order (useful for repair
    /// rules). Returns an empty list when the node was absent.
    pub fn remove_node(&mut self, node: ProcessId) -> Vec<ProcessId> {
        let neighbors = self.adj.remove(&node).unwrap_or_default();
        for n in &neighbors {
            if let Some(list) = self.adj.get_mut(n) {
                if let Ok(i) = list.binary_search(&node) {
                    list.remove(i);
                }
            }
        }
        self.edges -= neighbors.len();
        neighbors
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is absent or if `a == b` (self-loops make
    /// no sense for a knowledge relation).
    pub fn add_edge(&mut self, a: ProcessId, b: ProcessId) {
        assert_ne!(a, b, "self-loop in knowledge graph");
        assert!(self.adj.contains_key(&a), "edge endpoint {a} absent");
        assert!(self.adj.contains_key(&b), "edge endpoint {b} absent");
        let list_a = self.adj.get_mut(&a).expect("checked");
        if let Err(i) = list_a.binary_search(&b) {
            list_a.insert(i, b);
            let list_b = self.adj.get_mut(&b).expect("checked");
            let j = list_b.binary_search(&a).expect_err("edge was absent");
            list_b.insert(j, a);
            self.edges += 1;
        }
    }

    /// Removes the undirected edge `{a, b}` if present.
    pub fn remove_edge(&mut self, a: ProcessId, b: ProcessId) {
        let Some(list_a) = self.adj.get_mut(&a) else { return };
        let Ok(i) = list_a.binary_search(&b) else { return };
        list_a.remove(i);
        if let Some(list_b) = self.adj.get_mut(&b) {
            if let Ok(j) = list_b.binary_search(&a) {
                list_b.remove(j);
            }
        }
        self.edges -= 1;
    }

    /// `true` when the node is present.
    pub fn contains(&self, node: ProcessId) -> bool {
        self.adj.contains_key(&node)
    }

    /// `true` when the edge `{a, b}` is present.
    pub fn has_edge(&self, a: ProcessId, b: ProcessId) -> bool {
        self.adj
            .get(&a)
            .is_some_and(|list| list.binary_search(&b).is_ok())
    }

    /// The neighbors of a node in identity order, or `None` when the node
    /// is absent.
    pub fn neighbors(&self, node: ProcessId) -> Option<&[ProcessId]> {
        self.adj.get(&node).map(Vec::as_slice)
    }

    /// The degree of a node, or `None` when the node is absent.
    pub fn degree(&self, node: ProcessId) -> Option<usize> {
        self.adj.get(&node).map(Vec::len)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges (cached, O(1)).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// `true` when the graph has no node.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterates over the nodes in identity order.
    pub fn nodes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates over the edges as `(low, high)` pairs in identity order.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.adj
            .iter()
            .flat_map(|(&a, nbrs)| nbrs.iter().copied().filter(move |&b| a < b).map(move |b| (a, b)))
    }

    /// The subgraph induced by `keep` (nodes outside `keep` and their edges
    /// are dropped).
    pub fn induced(&self, keep: &BTreeSet<ProcessId>) -> Graph {
        let mut g = Graph::new();
        for &n in keep {
            if self.contains(n) {
                g.add_node(n);
            }
        }
        for (a, b) in self.edges() {
            if keep.contains(&a) && keep.contains(&b) {
                g.add_edge(a, b);
            }
        }
        g
    }
}

impl FromIterator<(ProcessId, ProcessId)> for Graph {
    /// Builds a graph from an edge list, creating endpoints as needed.
    fn from_iter<T: IntoIterator<Item = (ProcessId, ProcessId)>>(iter: T) -> Self {
        let mut g = Graph::new();
        for (a, b) in iter {
            g.add_node(a);
            g.add_node(b);
            g.add_edge(a, b);
        }
        g
    }
}

impl Extend<(ProcessId, ProcessId)> for Graph {
    fn extend<T: IntoIterator<Item = (ProcessId, ProcessId)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.add_node(a);
            self.add_node(b);
            self.add_edge(a, b);
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph with {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    fn triangle() -> Graph {
        [(pid(0), pid(1)), (pid(1), pid(2)), (pid(0), pid(2))]
            .into_iter()
            .collect()
    }

    #[test]
    fn build_and_count() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(pid(0)), Some(2));
        assert_eq!(g.degree(pid(9)), None);
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut g = Graph::new();
        g.add_node(pid(0));
        g.add_node(pid(0));
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn edges_are_undirected() {
        let g = triangle();
        assert!(g.has_edge(pid(0), pid(1)));
        assert!(g.has_edge(pid(1), pid(0)));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b, "edges iterate as (low, high)");
        }
    }

    #[test]
    fn remove_node_returns_neighbors_and_cleans_edges() {
        let mut g = triangle();
        let nbrs = g.remove_node(pid(1));
        assert_eq!(nbrs, vec![pid(0), pid(2)]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(pid(0), pid(1)));
        // Removing an absent node is a no-op.
        assert!(g.remove_node(pid(42)).is_empty());
    }

    #[test]
    fn remove_edge() {
        let mut g = triangle();
        g.remove_edge(pid(0), pid(1));
        assert!(!g.has_edge(pid(0), pid(1)));
        assert_eq!(g.edge_count(), 2);
        // Idempotent.
        g.remove_edge(pid(0), pid(1));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        g.add_node(pid(0));
        g.add_edge(pid(0), pid(0));
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn edge_to_missing_node_rejected() {
        let mut g = Graph::new();
        g.add_node(pid(0));
        g.add_edge(pid(0), pid(1));
    }

    #[test]
    fn induced_subgraph() {
        let g = triangle();
        let keep = BTreeSet::from([pid(0), pid(1)]);
        let sub = g.induced(&keep);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(pid(0), pid(1)));
    }

    #[test]
    fn extend_with_edges() {
        let mut g = Graph::new();
        g.extend([(pid(5), pid(6))]);
        assert!(g.has_edge(pid(5), pid(6)));
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(triangle().to_string(), "graph with 3 nodes, 3 edges");
    }
}
