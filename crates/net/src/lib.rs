//! # dds-net — the knowledge-graph substrate
//!
//! The geography dimension of a dynamic distributed system is realized by a
//! graph of *who knows whom*. This crate provides:
//!
//! - [`graph`] — the mutable undirected [`graph::Graph`] over process
//!   identities, with deterministic iteration order;
//! - [`generate`] — deterministic and random graph families used to
//!   instantiate the geography dimension in experiments;
//! - [`algo`] — BFS, connectivity, components, diameter, shortest paths;
//! - [`dynamic`] — attachment and repair rules that maintain the overlay
//!   under churn (including the adversarial chain rule of class C4);
//! - [`tvg`] — time-varying graphs and temporal (journey) reachability;
//! - [`metrics`] — structural metrics reported by the harness.
//!
//! ## Example
//!
//! ```
//! use dds_net::{algo, generate};
//!
//! let g = generate::torus(4, 4);
//! assert_eq!(algo::diameter(&g), Some(4));
//! assert!(algo::is_connected(&g));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
pub mod dynamic;
pub mod generate;
pub mod graph;
pub mod metrics;
pub mod tvg;

pub use graph::Graph;
