//! Sim-vs-net equivalence: one scripted tape, two hosts, same outcome.
//!
//! The networked service's correctness claim is that `dds-svc` is *only
//! a transport*: every protocol decision lives in the sans-io
//! [`StoreCore`], so driving the same operation tape through
//!
//! 1. a **direct harness** — the cores stepped in virtual time with an
//!    instant lossless network, the simulator's delivery discipline
//!    reduced to its essentials, and
//! 2. a **loopback `dds-svc` deployment** — a real `svc_seed` process
//!    plus two in-process [`Host`]s (one hosting the replicas, one the
//!    client) exchanging frames over a Unix socket,
//!
//! must produce identical outcomes: the same client response sequence,
//! the same final epoch and membership, and the same register state
//! (stamp and value) on every member of the final configuration. Wall
//! clocks differ, interleavings differ — the *decisions* may not.
//!
//! The tape exercises the interesting paths: writes, reads, an explicit
//! reconfiguration that decommissions a founding replica and drafts a
//! late joiner, and post-migration operations that must chase the view
//! through `Fenced` retries.

use std::collections::VecDeque;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dds_core::process::ProcessId;
use dds_core::spec::register::{RegOp, RegResp};
use dds_core::time::Time;
use dds_store::msg::{Stamp, StoreMsg};
use dds_store::protocol::{CoreIn, CoreOut, StoreCore, TimerToken};
use dds_svc::codec::{ROLE_CLIENT, ROLE_REPLICA};
use dds_svc::node::{net_params, Addr, Host, HostCfg};

const REPLICAS: [u64; 4] = [1, 2, 3, 4];
const INITIAL: [u64; 3] = [1, 2, 3];
const NEW_MEMBERS: [u64; 3] = [2, 3, 4];
const CLIENT: u64 = 100;

/// The scripted tape: what the client does, in order. The reconfigure
/// is injected at the coordinator (lowest-pid founding replica) once
/// the preceding operations have drained.
enum Step {
    Op(RegOp),
    Reconfigure,
}

fn tape() -> Vec<Step> {
    vec![
        Step::Op(RegOp::Write(CLIENT * 1_000_000 + 1)),
        Step::Op(RegOp::Read),
        Step::Op(RegOp::Write(CLIENT * 1_000_000 + 2)),
        Step::Op(RegOp::Read),
        Step::Reconfigure,
        Step::Op(RegOp::Write(CLIENT * 1_000_000 + 3)),
        Step::Op(RegOp::Read),
        Step::Op(RegOp::Write(CLIENT * 1_000_000 + 4)),
        Step::Op(RegOp::Read),
    ]
}

/// What both sides must agree on.
#[derive(Debug, PartialEq)]
struct Outcome {
    /// Client's log: (op, response, aborted) in completion order.
    responses: Vec<(RegOp, Option<RegResp>, bool)>,
    /// Final epoch on each member of the final configuration.
    epochs: Vec<u64>,
    /// Final membership as seen by each final member.
    members: Vec<Vec<ProcessId>>,
    /// Register state (stamp, value) on each final member.
    states: Vec<(Stamp, Option<u64>)>,
}

fn pid(raw: u64) -> ProcessId {
    ProcessId::from_raw(raw)
}

fn outcome_of(core_of: impl Fn(u64) -> (Vec<(RegOp, Option<RegResp>, bool)>, u64, Vec<ProcessId>, (Stamp, Option<u64>)), client_log: Vec<(RegOp, Option<RegResp>, bool)>) -> Outcome {
    let mut epochs = Vec::new();
    let mut members = Vec::new();
    let mut states = Vec::new();
    for &p in &NEW_MEMBERS {
        let (_, e, m, s) = core_of(p);
        epochs.push(e);
        members.push(m);
        states.push(s);
    }
    Outcome {
        responses: client_log,
        epochs,
        members,
        states,
    }
}

// ---------------------------------------------------------------- side A

/// Virtual-time harness: every core in one address space, sends
/// delivered instantly in FIFO order, timers fired only when the
/// message queue is dry (the simulator's quiescence discipline).
struct Harness {
    pids: Vec<ProcessId>,
    cores: Vec<StoreCore>,
    inbox: VecDeque<(usize, ProcessId, StoreMsg)>,
    timers: Vec<(u64, u64, usize, TimerToken)>,
    tseq: u64,
    now_ms: u64,
    out: Vec<CoreOut>,
}

impl Harness {
    fn new() -> Self {
        let params = net_params(INITIAL.iter().copied().map(pid).collect());
        let mut pids: Vec<ProcessId> = REPLICAS.iter().copied().map(pid).collect();
        pids.push(pid(CLIENT));
        let cores = pids.iter().map(|_| StoreCore::new(params.clone())).collect();
        let mut h = Harness {
            pids,
            cores,
            inbox: VecDeque::new(),
            timers: Vec::new(),
            tseq: 0,
            now_ms: 1,
            out: Vec::new(),
        };
        // Start order and peer hints mirror the networked deployment:
        // the replica host owns every replica (so their roster-derived
        // peer hint is empty), and the client host hands its client an
        // empty hint at Start so it never announces as a candidate.
        for i in 0..h.cores.len() {
            h.step(i, CoreIn::Start);
        }
        h.drain();
        h
    }

    fn idx(&self, p: u64) -> usize {
        self.pids.iter().position(|&q| q == pid(p)).unwrap()
    }

    /// Peer hint for a stepping core — the networked hosts derive this
    /// from the seed roster minus their own hosted pids, which leaves
    /// replicas with an empty hint (all replicas share a host) and the
    /// client with every replica.
    fn peers(&self, i: usize) -> Vec<ProcessId> {
        if self.pids[i] == pid(CLIENT) {
            REPLICAS.iter().copied().map(pid).collect()
        } else {
            Vec::new()
        }
    }

    fn step(&mut self, i: usize, input: CoreIn) {
        let me = self.pids[i];
        let peers = self.peers(i);
        let mut out = std::mem::take(&mut self.out);
        self.cores[i].step(Time::from_ticks(self.now_ms), me, &peers, input, &mut out);
        for eff in out.drain(..) {
            match eff {
                CoreOut::Send { to, msg } => {
                    let j = self.pids.iter().position(|&q| q == to).unwrap();
                    self.inbox.push_back((j, me, msg));
                }
                CoreOut::SetTimer { token, delay } => {
                    let deadline = self.now_ms + delay.as_ticks().max(1);
                    self.timers.push((deadline, self.tseq, i, token));
                    self.tseq += 1;
                }
            }
        }
        self.out = out;
    }

    /// Deliver every queued message (instant lossless network).
    fn drain(&mut self) {
        while let Some((i, from, msg)) = self.inbox.pop_front() {
            self.step(i, CoreIn::Message { from, msg });
        }
    }

    /// Jump virtual time to the next timer deadline and fire everything
    /// due, then drain the sends that produced.
    fn advance(&mut self) {
        let Some(&(deadline, _, _, _)) = self.timers.iter().min() else {
            return;
        };
        self.now_ms = self.now_ms.max(deadline);
        let mut due: Vec<(u64, u64, usize, TimerToken)> = Vec::new();
        self.timers.retain(|&t| {
            if t.0 <= deadline {
                due.push(t);
                false
            } else {
                true
            }
        });
        due.sort();
        for (_, _, i, token) in due {
            self.step(i, CoreIn::Timer(token));
        }
        self.drain();
    }

    fn run_until(&mut self, mut done: impl FnMut(&Harness) -> bool) {
        for _ in 0..100_000 {
            if done(self) {
                return;
            }
            self.drain();
            if done(self) {
                return;
            }
            self.advance();
        }
        panic!("harness did not converge (virtual time {} ms)", self.now_ms);
    }

    fn client_log(&self) -> Vec<(RegOp, Option<RegResp>, bool)> {
        self.cores[self.idx(CLIENT)]
            .log()
            .iter()
            .map(|e| (e.op, e.response, e.aborted))
            .collect()
    }
}

fn run_direct() -> Outcome {
    let mut h = Harness::new();
    let client = h.idx(CLIENT);
    let coordinator = h.idx(INITIAL[0]);
    let mut completed = 0usize;
    for step in tape() {
        match step {
            Step::Op(op) => {
                let me = h.pids[client];
                h.inbox.push_back((client, me, StoreMsg::Invoke(op)));
                completed += 1;
                h.run_until(|h| h.cores[client].log().len() >= completed);
            }
            Step::Reconfigure => {
                let me = h.pids[coordinator];
                let members = NEW_MEMBERS.iter().copied().map(pid).collect();
                h.inbox
                    .push_back((coordinator, me, StoreMsg::Reconfigure { members }));
                h.run_until(|h| NEW_MEMBERS.iter().all(|&p| h.cores[h.idx(p)].epoch() >= 2));
            }
        }
    }
    // Let the tail of acks land (messages only — no more timer jumps).
    h.drain();
    let log = h.client_log();
    outcome_of(
        |p| {
            let c = &h.cores[h.idx(p)];
            (Vec::new(), c.epoch(), c.members().to_vec(), c.state())
        },
        log,
    )
}

// ---------------------------------------------------------------- side B

/// A child process killed on drop, so a failing test never leaks a seed.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn run_networked() -> Outcome {
    let dir = std::env::temp_dir().join(format!("dds_equiv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let seed_addr = format!("uds:{}", dir.join("seed.sock").display());

    let mut seed = Reaper(
        Command::new(env!("CARGO_BIN_EXE_svc_seed"))
            .args(["--listen", &seed_addr])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn svc_seed"),
    );
    let mut ready = String::new();
    std::io::BufReader::new(seed.0.stdout.as_mut().unwrap())
        .read_line(&mut ready)
        .expect("seed ready line");
    assert!(ready.contains("ready"), "unexpected seed banner: {ready}");

    let params = net_params(INITIAL.iter().copied().map(pid).collect());
    let epoch = Instant::now();
    let mut replicas = Host::new(
        HostCfg {
            listen: Some(Addr::parse(&format!("uds:{}", dir.join("r.sock").display())).unwrap()),
            seed: Some(Addr::parse(&seed_addr).unwrap()),
            role: ROLE_REPLICA,
        },
        REPLICAS.iter().map(|&p| (pid(p), params.clone())).collect(),
        epoch,
    )
    .expect("replica host");
    let mut client = Host::new(
        HostCfg {
            listen: None,
            seed: Some(Addr::parse(&seed_addr).unwrap()),
            role: ROLE_CLIENT,
        },
        vec![(pid(CLIENT), params.clone())],
        epoch,
    )
    .expect("client host");

    let deadline = Instant::now() + Duration::from_secs(60);
    let pump = |replicas: &mut Host, client: &mut Host, done: &mut dyn FnMut(&Host, &Host) -> bool| {
        while !done(replicas, client) {
            assert!(Instant::now() < deadline, "networked side timed out");
            replicas.tick(1).unwrap();
            client.tick(1).unwrap();
        }
    };

    pump(&mut replicas, &mut client, &mut |r, c| {
        r.started() && c.started()
    });

    let ridx = |p: u64| REPLICAS.iter().position(|&q| q == p).unwrap();
    let mut completed = 0usize;
    for step in tape() {
        match step {
            Step::Op(op) => {
                client.inject(0, StoreMsg::Invoke(op));
                completed += 1;
                pump(&mut replicas, &mut client, &mut |_, c| {
                    c.core(0).log().len() >= completed
                });
            }
            Step::Reconfigure => {
                let members = NEW_MEMBERS.iter().copied().map(pid).collect();
                replicas.inject(ridx(INITIAL[0]), StoreMsg::Reconfigure { members });
                pump(&mut replicas, &mut client, &mut |r, _| {
                    NEW_MEMBERS.iter().all(|&p| r.core(ridx(p)).epoch() >= 2)
                });
            }
        }
    }
    // Drain the ack tail so every member applied the last store.
    let settle = Instant::now() + Duration::from_millis(100);
    pump(&mut replicas, &mut client, &mut |_, _| {
        Instant::now() >= settle
    });

    let log = client
        .core(0)
        .log()
        .iter()
        .map(|e| (e.op, e.response, e.aborted))
        .collect();
    let out = outcome_of(
        |p| {
            let c = replicas.core(ridx(p));
            (Vec::new(), c.epoch(), c.members().to_vec(), c.state())
        },
        log,
    );
    drop(seed);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

// ------------------------------------------------------------------ test

#[test]
fn scripted_tape_agrees_between_sim_harness_and_loopback_service() {
    let direct = run_direct();
    let networked = run_networked();

    // The tape must have been meaningful on both sides before the
    // equivalence claim says anything: all ops answered, epoch moved.
    assert_eq!(direct.responses.len(), 8, "direct: every op completed");
    assert!(
        direct.responses.iter().all(|(_, r, aborted)| r.is_some() && !aborted),
        "direct: no aborts on a lossless network: {:?}",
        direct.responses
    );
    assert!(direct.epochs.iter().all(|&e| e == 2), "direct: epoch advanced");
    assert_eq!(
        direct.members,
        vec![NEW_MEMBERS.iter().copied().map(pid).collect::<Vec<_>>(); 3],
        "direct: final configuration adopted"
    );

    assert_eq!(direct, networked);
}
