//! Steady-state encode/decode must allocate nothing.
//!
//! The service's throughput claim rests on the codec reusing its
//! buffers: `encode_frame` appends into a caller-owned `Vec` that
//! reaches steady capacity, and `FrameReader` reassembles frames in one
//! internal buffer compacted in place. This test pins the claim with a
//! counting global allocator, the same technique as the simulator's
//! `noop_alloc` pin: warm the buffers up, then require a window of
//! thousands of encode→feed→decode round trips to perform **zero**
//! allocations.
//!
//! Heap-free `StoreMsg` variants only (`Query`/`Store`/acks — the hot
//! data path); variants carrying member lists allocate their `Vec` by
//! design and are exercised by the property tests instead.
//!
//! The file holds exactly one `#[test]` on purpose: the allocator count
//! is process-global, and a sibling test running concurrently would
//! pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dds_core::process::ProcessId;
use dds_store::msg::{OpTag, Stamp, StoreMsg};
use dds_svc::codec::{decode_frame, encode_frame, FrameReader, WireMsg};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The hot-path message mix: one replica round of a store operation.
fn hot_messages() -> [WireMsg; 6] {
    let from = ProcessId::from_raw(1001);
    let to = ProcessId::from_raw(2);
    let tag = OpTag {
        seq: 77,
        attempt: 2,
    };
    let stamp = Stamp {
        seq: 12345,
        writer: 1001,
    };
    [
        WireMsg::Proto {
            from,
            to,
            msg: StoreMsg::Query { tag, epoch: 3 },
        },
        WireMsg::Proto {
            from: to,
            to: from,
            msg: StoreMsg::QueryAck {
                tag,
                stamp,
                value: Some(0xDEAD_BEEF),
            },
        },
        WireMsg::Proto {
            from,
            to,
            msg: StoreMsg::Store {
                tag,
                epoch: 3,
                stamp,
                value: Some(42),
            },
        },
        WireMsg::Proto {
            from: to,
            to: from,
            msg: StoreMsg::StoreAck { tag },
        },
        WireMsg::Proto {
            from,
            to,
            msg: StoreMsg::Probe { epoch: 3 },
        },
        WireMsg::Proto {
            from,
            to,
            msg: StoreMsg::ViewReq,
        },
    ]
}

/// One batch: encode the mix into the write buffer, feed it to the
/// reader in two uneven chunks (so reassembly and compaction both run),
/// decode every frame back out.
fn round_trip(wbuf: &mut Vec<u8>, reader: &mut FrameReader, msgs: &[WireMsg]) -> usize {
    wbuf.clear();
    for m in msgs {
        encode_frame(wbuf, m);
    }
    let split = wbuf.len() / 3 + 1;
    reader.extend(&wbuf[..split]);
    let mut decoded = 0;
    while let Ok(Some(payload)) = reader.next_payload() {
        let msg = decode_frame(payload).expect("valid frame");
        decoded += usize::from(matches!(msg, WireMsg::Proto { .. }));
    }
    reader.extend(&wbuf[split..]);
    while let Ok(Some(payload)) = reader.next_payload() {
        let msg = decode_frame(payload).expect("valid frame");
        decoded += usize::from(matches!(msg, WireMsg::Proto { .. }));
    }
    decoded
}

#[test]
fn steady_state_codec_allocates_nothing() {
    let msgs = hot_messages();
    let mut wbuf = Vec::new();
    let mut reader = FrameReader::new();

    // Warm-up: let the write buffer and the reader's reassembly buffer
    // reach steady capacity.
    for _ in 0..64 {
        let n = round_trip(&mut wbuf, &mut reader, &msgs);
        assert_eq!(n, msgs.len());
    }

    // The count is process-global; rare ambient allocations can land in
    // a window. A codec regression allocates in every window, so three
    // windows with one required-clean keeps the pin exact without the
    // noise.
    let mut cleanest = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCS.load(Ordering::SeqCst);
        let mut decoded = 0;
        for _ in 0..1000 {
            decoded += round_trip(&mut wbuf, &mut reader, &msgs);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(decoded, 1000 * msgs.len(), "window decoded every frame");
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "steady-state encode/decode allocated in every one of 3 windows \
         (best window: {cleanest} allocations over 6000 frames)"
    );
}
