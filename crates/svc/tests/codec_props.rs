//! Property tests for the wire codec.
//!
//! Three classes of properties guard the frame layer the networked
//! service lives on:
//!
//! 1. **Round-trip**: every wire message — all seventeen `StoreMsg`
//!    variants plus the service's `Hello`/`Roster` — encodes to a frame
//!    that decodes back to an equal message.
//! 2. **Reassembly**: a byte stream of many frames split at arbitrary
//!    points (including mid-length-prefix) decodes to the same message
//!    sequence regardless of how it was chunked.
//! 3. **Robustness**: arbitrary garbage, truncations, and oversized
//!    length prefixes are rejected with an error — never a panic, never
//!    an out-of-bounds read, and never an unbounded buffer.

use dds_core::process::ProcessId;
use dds_core::spec::register::RegOp;
use dds_store::msg::{OpTag, Stamp, StoreMsg};
use dds_svc::codec::{decode_frame, encode_frame, FrameReader, WireMsg, MAX_FRAME};
use proptest::prelude::*;

fn pid() -> impl Strategy<Value = ProcessId> {
    (0u64..1 << 48).prop_map(ProcessId::from_raw)
}

fn tag() -> impl Strategy<Value = OpTag> {
    (any::<u64>(), any::<u32>()).prop_map(|(seq, attempt)| OpTag { seq, attempt })
}

fn stamp() -> impl Strategy<Value = Stamp> {
    (any::<u64>(), any::<u64>()).prop_map(|(seq, writer)| Stamp { seq, writer })
}

fn reg_op() -> impl Strategy<Value = RegOp> {
    prop_oneof![Just(RegOp::Read), any::<u64>().prop_map(RegOp::Write)]
}

fn members() -> impl Strategy<Value = Vec<ProcessId>> {
    proptest::collection::vec(pid(), 0..12)
}

/// Every `StoreMsg` variant, with adversarial field values.
fn store_msg() -> impl Strategy<Value = StoreMsg> {
    prop_oneof![
        reg_op().prop_map(StoreMsg::Invoke),
        members().prop_map(|members| StoreMsg::Reconfigure { members }),
        (tag(), any::<u64>()).prop_map(|(tag, epoch)| StoreMsg::Query { tag, epoch }),
        (tag(), any::<u64>(), stamp(), proptest::option::of(any::<u64>()))
            .prop_map(|(tag, epoch, stamp, value)| StoreMsg::Store {
                tag,
                epoch,
                stamp,
                value
            }),
        Just(StoreMsg::ViewReq),
        (tag(), stamp(), proptest::option::of(any::<u64>()))
            .prop_map(|(tag, stamp, value)| StoreMsg::QueryAck { tag, stamp, value }),
        tag().prop_map(|tag| StoreMsg::StoreAck { tag }),
        (tag(), any::<u64>(), members())
            .prop_map(|(tag, epoch, members)| StoreMsg::Fenced {
                tag,
                epoch,
                members
            }),
        (any::<u64>(), members())
            .prop_map(|(epoch, members)| StoreMsg::ViewRep { epoch, members }),
        Just(StoreMsg::Announce),
        pid().prop_map(|joiner| StoreMsg::Announce2 { joiner }),
        any::<u64>().prop_map(|epoch| StoreMsg::Probe { epoch }),
        (any::<u64>(), members())
            .prop_map(|(epoch, candidates)| StoreMsg::ProbeAck { epoch, candidates }),
        (any::<u64>(), members())
            .prop_map(|(epoch, members)| StoreMsg::RecQuery { epoch, members }),
        (any::<u64>(), any::<u64>(), stamp(), proptest::option::of(any::<u64>()))
            .prop_map(|(epoch, base, stamp, value)| StoreMsg::RecAck {
                epoch,
                base,
                stamp,
                value
            }),
        (any::<u64>(), members(), stamp(), proptest::option::of(any::<u64>()))
            .prop_map(|(epoch, members, stamp, value)| StoreMsg::Migrate {
                epoch,
                members,
                stamp,
                value
            }),
        any::<u64>().prop_map(|epoch| StoreMsg::MigrateAck { epoch }),
    ]
}

fn addr() -> impl Strategy<Value = String> {
    // Full unicode coverage (surrogates replaced) without a char strategy.
    proptest::collection::vec(any::<u32>(), 0..40).prop_map(|vs| {
        vs.into_iter()
            .map(|v| char::from_u32(v % 0x11_0000).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

fn wire_msg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        (pid(), any::<u8>(), addr()).prop_map(|(pid, role, addr)| WireMsg::Hello {
            pid,
            role,
            addr
        }),
        proptest::collection::vec((pid(), any::<u8>(), addr()), 0..8)
            .prop_map(|entries| WireMsg::Roster { entries }),
        (pid(), pid(), store_msg()).prop_map(|(from, to, msg)| WireMsg::Proto {
            from,
            to,
            msg
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → frame → decode is the identity on every wire message.
    #[test]
    fn round_trip_every_message(msg in wire_msg()) {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &msg);
        // Frame = 4-byte length prefix + payload.
        prop_assert!(buf.len() >= 5);
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        prop_assert_eq!(len, buf.len() - 4);
        let decoded = decode_frame(&buf[4..]).expect("round trip decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// A stream of frames split at arbitrary byte boundaries reassembles
    /// into exactly the original message sequence, whatever the chunking.
    #[test]
    fn split_frames_reassemble(
        msgs in proptest::collection::vec(wire_msg(), 1..10),
        cuts in proptest::collection::vec(1usize..64, 0..40),
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            encode_frame(&mut stream, m);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut cut_iter = cuts.into_iter();
        while pos < stream.len() {
            let take = cut_iter.next().unwrap_or(usize::MAX).min(stream.len() - pos);
            reader.extend(&stream[pos..pos + take]);
            pos += take;
            while let Some(payload) = reader.next_payload().expect("valid stream") {
                decoded.push(decode_frame(payload).expect("valid frame"));
            }
        }
        prop_assert_eq!(decoded, msgs);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// Arbitrary bytes never panic the decoder: they decode to a message
    /// or return an error.
    #[test]
    fn garbage_never_panics_decode(payload in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_frame(&payload);
    }

    /// Arbitrary bytes fed to the reassembler never panic and never make
    /// it buffer beyond the frame cap: any declared length above
    /// `MAX_FRAME` errors out before the payload is accumulated.
    #[test]
    fn garbage_never_panics_reader(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200),
        0..8,
    )) {
        let mut reader = FrameReader::new();
        'outer: for chunk in &chunks {
            reader.extend(chunk);
            loop {
                match reader.next_payload() {
                    Ok(Some(payload)) => { let _ = decode_frame(payload); }
                    Ok(None) => break,
                    Err(_) => break 'outer, // poisoned stream: caller drops conn
                }
            }
            prop_assert!(reader.pending() <= MAX_FRAME + 4);
        }
    }

    /// A truncated frame decodes to `Truncated`-class errors, never a
    /// panic: chop any suffix off a valid payload and decode.
    #[test]
    fn truncation_is_an_error_not_a_panic(msg in wire_msg(), keep in 0usize..1000) {
        let mut buf = Vec::new();
        encode_frame(&mut buf, &msg);
        let payload = &buf[4..];
        if keep < payload.len() {
            // Strict prefix: must error (every field is fixed-width or
            // length-prefixed, so a prefix is never a valid message).
            prop_assert!(decode_frame(&payload[..keep]).is_err());
        }
    }
}
