//! # dds-svc — the networked dds-store service
//!
//! This crate runs the *same compiled protocol logic* as the simulator
//! — the sans-io [`dds_store::protocol::StoreCore`] state machines —
//! over real sockets. Nothing protocol-shaped lives here: the crate is
//! purely a host. It provides:
//!
//! - [`codec`]: a length-prefixed binary wire format for every
//!   [`dds_store::msg::StoreMsg`] plus the service's own `Hello`/`Roster`
//!   frames, with reusable encode/decode buffers (steady state allocates
//!   nothing — pinned by a counting-allocator test).
//! - [`poller`]: a minimal `poll(2)` wrapper (no external crates; std
//!   already links libc).
//! - [`wheel`]: a calendar-queue timer wheel translating the core's
//!   `SetTimer` outputs into poll timeouts, reusing the simulator's
//!   calendar-queue idiom.
//! - [`node`]: the event loop — connection management, frame routing,
//!   write coalescing, seed-roster discovery — hosting one or many
//!   cores per process.
//!
//! Three binaries compose these into a runnable service:
//!
//! - `svc_seed` — the registry: accepts `Hello`s, broadcasts the roster,
//!   prunes entries whose connection closed.
//! - `svc_replica` — one quorum-engine replica (epoch-fenced
//!   reconfiguration included, exactly as in the simulator).
//! - `svc_load` — a multi-threaded closed-loop load generator with
//!   per-thread HDR-style latency histograms and an optional
//!   operation-log JSONL for the Wing–Gong atomicity checker.
//!
//! The `run_net` orchestrator in `dds-bench` spawns these as real
//! processes, injects churn by killing and starting replicas, and
//! cross-checks the measured abort/atomicity behavior against the
//! simulator's prediction for the same parameters.

pub mod codec;
pub mod node;
pub mod poller;
pub mod wheel;

pub use codec::{decode_frame, encode_frame, CodecError, FrameReader, WireMsg};
pub use node::{net_params, Addr, Host, HostCfg, Listener, Stream};
pub use wheel::TimerWheel;
