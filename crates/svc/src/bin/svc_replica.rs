//! `svc_replica` — one quorum-engine replica process.
//!
//! Hosts a single sans-io [`dds_store::protocol::StoreCore`] over the
//! poll event loop: serves `Query`/`Store` with epoch fencing, probes
//! peers, and coordinates epoch-fenced reconfigurations — the exact
//! protocol the simulator runs, at 1 tick = 1 ms.
//!
//! Prints a `ready` line once joined, then one `status` JSON line per
//! `--status-every-ms` so the orchestrator can watch epochs advance
//! during churn. Runs until killed.

use std::io::Write as _;
use std::process::exit;
use std::time::Instant;

use dds_core::process::ProcessId;
use dds_core::time::TimeDelta;
use dds_svc::codec::ROLE_REPLICA;
use dds_svc::node::{net_params, Addr, Host, HostCfg};

fn usage() -> ! {
    eprintln!(
        "usage: svc_replica --pid N --listen <addr> --seed <addr> --initial 1,2,3 \\\n\
         \x20        [--timeout-ms N] [--probe-ms N] [--suspect-ms N] [--view-ms N] \\\n\
         \x20        [--status-every-ms N]"
    );
    exit(2)
}

fn parse_u64(s: Option<String>) -> u64 {
    s.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let mut pid = None;
    let mut listen = None;
    let mut seed = None;
    let mut initial = Vec::new();
    let mut timeout_ms = None;
    let mut probe_ms = None;
    let mut suspect_ms = None;
    let mut view_ms = None;
    let mut status_every_ms = 1000u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pid" => pid = Some(parse_u64(args.next())),
            "--listen" => listen = args.next(),
            "--seed" => seed = args.next(),
            "--initial" => {
                initial = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|p| ProcessId::from_raw(p.trim().parse().unwrap_or_else(|_| usage())))
                    .collect()
            }
            "--timeout-ms" => timeout_ms = Some(parse_u64(args.next())),
            "--probe-ms" => probe_ms = Some(parse_u64(args.next())),
            "--suspect-ms" => suspect_ms = Some(parse_u64(args.next())),
            "--view-ms" => view_ms = Some(parse_u64(args.next())),
            "--status-every-ms" => status_every_ms = parse_u64(args.next()),
            _ => usage(),
        }
    }
    let (Some(pid), Some(listen), Some(seed)) = (pid, listen, seed) else {
        usage()
    };
    if initial.is_empty() {
        usage()
    }
    let me = ProcessId::from_raw(pid);
    let mut params = net_params(initial);
    if let Some(t) = timeout_ms {
        params.op_timeout = TimeDelta::ticks(t);
    }
    if let Some(t) = probe_ms {
        params.probe_every = Some(TimeDelta::ticks(t));
    }
    if let Some(t) = suspect_ms {
        params.suspect_after = TimeDelta::ticks(t);
    }
    if let Some(t) = view_ms {
        params.view_delta = TimeDelta::ticks(t);
    }

    let cfg = HostCfg {
        listen: Some(Addr::parse(&listen).unwrap_or_else(|e| {
            eprintln!("svc_replica: {e}");
            exit(2)
        })),
        seed: Some(Addr::parse(&seed).unwrap_or_else(|e| {
            eprintln!("svc_replica: {e}");
            exit(2)
        })),
        role: ROLE_REPLICA,
    };
    let mut host = match Host::new(cfg, vec![(me, params)], Instant::now()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("svc_replica: start: {e}");
            exit(1)
        }
    };
    println!("{{\"event\": \"ready\", \"pid\": {pid}}}");
    std::io::stdout().flush().ok();

    let mut last_status = 0u64;
    loop {
        if host.tick(100).is_err() {
            exit(1);
        }
        let now = host.now_ms();
        if now.saturating_sub(last_status) >= status_every_ms {
            last_status = now;
            let core = host.core(0);
            let (stamp, _) = core.state();
            let members: Vec<String> = core
                .members()
                .iter()
                .map(|p| p.as_raw().to_string())
                .collect();
            println!(
                "{{\"event\": \"status\", \"pid\": {pid}, \"epoch\": {}, \"stamp_seq\": {}, \
                 \"members\": [{}], \"fenced_nacks\": {}, \"reconfigs_started\": {}, \
                 \"reconfigs_committed\": {}, \"migrations\": {}}}",
                core.epoch(),
                stamp.seq,
                members.join(", "),
                core.stats.fenced_nacks,
                core.stats.reconfigs_started,
                core.stats.reconfigs_committed,
                core.stats.migrations,
            );
            std::io::stdout().flush().ok();
        }
    }
}
