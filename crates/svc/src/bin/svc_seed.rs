//! `svc_seed` — the discovery registry.
//!
//! Accepts connections, learns `(pid, role, addr)` triples from `Hello`
//! frames, and broadcasts the full roster to every connected process
//! whenever it changes. Entries are pruned when the connection that
//! announced them closes — a killed replica disappears from the roster
//! within one poll cycle, which is how surviving processes stop dialing
//! it and how the orchestrator's churn injection propagates.
//!
//! Events are printed as one-line JSON on stdout (`ready`, `roster`),
//! which the `run_net` orchestrator tails.

use std::io::Write as _;
use std::process::exit;

use dds_core::process::ProcessId;
use dds_svc::codec::WireMsg;
use dds_svc::node::{Addr, Conn};
use dds_svc::poller::{poll_fds, PollFd};

fn usage() -> ! {
    eprintln!("usage: svc_seed --listen <uds:PATH|tcp:HOST:PORT>");
    exit(2)
}

fn main() {
    let mut listen = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = args.next(),
            _ => usage(),
        }
    }
    let Some(listen) = listen else { usage() };
    let addr = match Addr::parse(&listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("svc_seed: {e}");
            exit(2)
        }
    };
    let listener = match addr.listen() {
        Ok(l) => l,
        Err(e) => {
            eprintln!("svc_seed: bind {listen}: {e}");
            exit(1)
        }
    };
    println!("{{\"event\": \"ready\", \"listen\": \"{}\"}}", addr.display());
    std::io::stdout().flush().ok();

    let mut conns: Vec<Option<Conn>> = Vec::new();
    // (pid, role, addr, owning connection slot), sorted by pid.
    let mut roster: Vec<(ProcessId, u8, String, usize)> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_map: Vec<usize> = Vec::new();

    loop {
        pollfds.clear();
        poll_map.clear();
        pollfds.push(PollFd::new(listener.raw_fd(), true, false));
        poll_map.push(usize::MAX);
        for (i, c) in conns.iter().enumerate() {
            if let Some(c) = c {
                if !c.is_dead() {
                    pollfds.push(PollFd::new(c.raw_fd(), true, c.backlog() > 0));
                    poll_map.push(i);
                }
            }
        }
        if poll_fds(&mut pollfds, Some(1000)).is_err() {
            exit(1);
        }

        let mut changed = false;
        for pi in 0..pollfds.len() {
            let fd = pollfds[pi];
            let slot = poll_map[pi];
            if slot == usize::MAX {
                if fd.readable() {
                    while let Ok(Some(stream)) = listener.accept() {
                        let conn = Conn::new(stream);
                        if let Some(free) = conns.iter_mut().find(|c| c.is_none()) {
                            *free = Some(conn);
                        } else {
                            conns.push(Some(conn));
                        }
                    }
                }
                continue;
            }
            let Some(conn) = conns[slot].as_mut() else {
                continue;
            };
            if fd.readable() {
                conn.fill(&mut scratch);
                while let Some(msg) = conn.next_msg() {
                    if let WireMsg::Hello { pid, role, addr } = msg {
                        match roster.iter_mut().find(|(p, ..)| *p == pid) {
                            Some(entry) => *entry = (pid, role, addr, slot),
                            None => roster.push((pid, role, addr, slot)),
                        }
                        changed = true;
                    }
                }
            } else if fd.writable() {
                conn.flush();
            }
        }

        for (i, slot) in conns.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(|c| c.is_dead()) {
                *slot = None;
                let before = roster.len();
                roster.retain(|&(_, _, _, owner)| owner != i);
                changed |= roster.len() != before;
            }
        }

        if changed {
            roster.sort_by_key(|&(p, ..)| p.as_raw());
            let entries: Vec<(ProcessId, u8, String)> = roster
                .iter()
                .map(|(p, r, a, _)| (*p, *r, a.clone()))
                .collect();
            let frame = WireMsg::Roster {
                entries: entries.clone(),
            };
            for conn in conns.iter_mut().flatten() {
                conn.queue(&frame);
            }
            let listed: Vec<String> = entries
                .iter()
                .map(|(p, r, a)| format!("[{}, {}, \"{}\"]", p.as_raw(), r, a))
                .collect();
            println!(
                "{{\"event\": \"roster\", \"entries\": [{}]}}",
                listed.join(", ")
            );
            std::io::stdout().flush().ok();
        }

        for conn in conns.iter_mut().flatten() {
            if conn.backlog() > 0 && !conn.is_dead() {
                conn.flush();
            }
        }
    }
}
