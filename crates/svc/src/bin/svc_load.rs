//! `svc_load` — multi-threaded closed-loop load generator.
//!
//! Each thread runs its own [`Host`] with `--clients` client cores
//! (distinct pids), each keeping exactly one operation in flight: the
//! next op is injected the moment the previous one completes or aborts.
//! Latency is wall-clock microseconds from injection to the tick that
//! observed the response, recorded into per-thread HDR-style
//! [`Histogram`]s (reads and writes separately; aborts are counted but
//! not folded into latency percentiles — an abort's latency is just the
//! retry budget).
//!
//! All threads share one epoch `Instant`, so `--log-ops` rows from
//! different threads live on a single time base and the merged JSONL is
//! directly checkable by the Wing–Gong linearizability checker.
//!
//! The final summary is one JSON line on stdout (and `--out FILE` if
//! given): counts, elapsed, ops/sec, and the two latency histograms in
//! [`Histogram::to_json`] form for cross-process merging.

use std::io::Write as _;
use std::process::exit;
use std::time::Instant;

use dds_core::process::ProcessId;
use dds_core::spec::register::{RegOp, RegResp};
use dds_core::time::TimeDelta;
use dds_obs::histogram::Histogram;
use dds_store::msg::StoreMsg;
use dds_svc::codec::ROLE_CLIENT;
use dds_svc::node::{net_params, Addr, Host, HostCfg};

fn usage() -> ! {
    eprintln!(
        "usage: svc_load --seed <addr> --initial 1,2,3 [--threads N] [--clients N] \\\n\
         \x20        [--ops N] [--write-pct N] [--pid-base N] [--rng-seed N] \\\n\
         \x20        [--timeout-ms N] [--max-attempts N] [--op-gap-us N] \\\n\
         \x20        [--log-ops FILE] [--out FILE]"
    );
    exit(2)
}

fn parse_u64(s: Option<String>) -> u64 {
    s.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

/// xorshift64* — deterministic per-thread op mix without rand.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// One finished operation, for `--log-ops`.
struct OpRow {
    pid: u64,
    write: bool,
    value: u64,
    invoked_us: u64,
    responded_us: u64,
    response: Option<RegResp>,
    aborted: bool,
}

struct ThreadResult {
    issued: u64,
    completed: u64,
    aborted: u64,
    retries: u64,
    read_us: Histogram,
    write_us: Histogram,
    rows: Vec<OpRow>,
}

#[allow(clippy::too_many_arguments)]
fn run_thread(
    seed: Addr,
    initial: Vec<ProcessId>,
    pids: Vec<ProcessId>,
    ops_per_client: u64,
    write_pct: u64,
    rng_seed: u64,
    timeout_ms: u64,
    max_attempts: u32,
    op_gap_us: u64,
    epoch: Instant,
    log_ops: bool,
) -> std::io::Result<ThreadResult> {
    let k = pids.len();
    let mut params = net_params(initial);
    params.op_timeout = TimeDelta::ticks(timeout_ms);
    params.max_attempts = max_attempts;
    let cfg = HostCfg {
        listen: None,
        seed: Some(seed),
        role: ROLE_CLIENT,
    };
    let cores = pids.iter().map(|&p| (p, params.clone())).collect();
    let mut host = Host::new(cfg, cores, epoch)?;
    while !host.started() {
        host.tick(50)?;
    }

    let mut rng = Rng(rng_seed | 1);
    let mut issued = vec![0u64; k];
    let mut seen = vec![0usize; k];
    let mut started_at = vec![Instant::now(); k];
    let mut ready_at = vec![Instant::now(); k];
    let gap = std::time::Duration::from_micros(op_gap_us);
    let mut last_write = vec![false; k];
    let mut out = ThreadResult {
        issued: 0,
        completed: 0,
        aborted: 0,
        retries: 0,
        read_us: Histogram::new(),
        write_us: Histogram::new(),
        rows: Vec::new(),
    };

    loop {
        let mut all_done = true;
        for i in 0..k {
            let log_len = host.core(i).log().len();
            if log_len > seen[i] {
                // The in-flight op finished (closed loop: exactly one).
                let entry = &host.core(i).log()[log_len - 1];
                let us = started_at[i].elapsed().as_micros() as u64;
                let aborted = entry.aborted;
                let response = entry.response;
                let value = match entry.op {
                    RegOp::Write(v) => v,
                    RegOp::Read => 0,
                };
                if aborted {
                    out.aborted += 1;
                } else {
                    out.completed += 1;
                    if last_write[i] {
                        out.write_us.record(us.max(1));
                    } else {
                        out.read_us.record(us.max(1));
                    }
                }
                if log_ops {
                    let end_us = epoch.elapsed().as_micros() as u64;
                    out.rows.push(OpRow {
                        pid: host.pid(i).as_raw(),
                        write: last_write[i],
                        value,
                        invoked_us: end_us.saturating_sub(us),
                        responded_us: end_us,
                        response,
                        aborted,
                    });
                }
                seen[i] = log_len;
                if op_gap_us > 0 {
                    ready_at[i] = Instant::now() + gap;
                }
            }
            if (seen[i] as u64) == issued[i]
                && issued[i] < ops_per_client
                && (op_gap_us == 0 || Instant::now() >= ready_at[i])
            {
                let write = rng.next() % 100 < write_pct;
                // Written values are unique per (pid, index) so a
                // linearizability witness can identify every write.
                let op = if write {
                    RegOp::Write(host.pid(i).as_raw() * 1_000_000 + issued[i] + 1)
                } else {
                    RegOp::Read
                };
                last_write[i] = write;
                started_at[i] = Instant::now();
                host.inject(i, StoreMsg::Invoke(op));
                issued[i] += 1;
                out.issued += 1;
            }
            if issued[i] < ops_per_client || (seen[i] as u64) < issued[i] {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        host.tick(if op_gap_us > 0 { 1 } else { 10 })?;
    }
    for i in 0..k {
        out.retries += host.core(i).stats.retries;
    }
    Ok(out)
}

fn main() {
    let mut seed = None;
    let mut initial: Vec<ProcessId> = Vec::new();
    let mut threads = 2u64;
    let mut clients = 16u64;
    let mut ops = 1000u64;
    let mut write_pct = 20u64;
    let mut pid_base = 1000u64;
    let mut rng_seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut timeout_ms = 250u64;
    let mut max_attempts = 6u32;
    let mut op_gap_us = 0u64;
    let mut log_ops_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = args.next(),
            "--initial" => {
                initial = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|p| ProcessId::from_raw(p.trim().parse().unwrap_or_else(|_| usage())))
                    .collect()
            }
            "--threads" => threads = parse_u64(args.next()),
            "--clients" => clients = parse_u64(args.next()),
            "--ops" => ops = parse_u64(args.next()),
            "--write-pct" => write_pct = parse_u64(args.next()),
            "--pid-base" => pid_base = parse_u64(args.next()),
            "--rng-seed" => rng_seed = parse_u64(args.next()),
            "--timeout-ms" => timeout_ms = parse_u64(args.next()),
            "--max-attempts" => max_attempts = parse_u64(args.next()) as u32,
            "--op-gap-us" => op_gap_us = parse_u64(args.next()),
            "--log-ops" => log_ops_path = args.next(),
            "--out" => out_path = args.next(),
            _ => usage(),
        }
    }
    let Some(seed) = seed else { usage() };
    if initial.is_empty() {
        usage()
    }
    let seed = Addr::parse(&seed).unwrap_or_else(|e| {
        eprintln!("svc_load: {e}");
        exit(2)
    });

    let epoch = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let seed = seed.clone();
        let initial = initial.clone();
        let pids: Vec<ProcessId> = (0..clients)
            .map(|j| ProcessId::from_raw(pid_base + t * clients + j))
            .collect();
        let log_ops = log_ops_path.is_some();
        let rng = rng_seed ^ (t.wrapping_mul(0xA24B_AED4_963E_E407));
        handles.push(std::thread::spawn(move || {
            run_thread(
                seed,
                initial,
                pids,
                ops,
                write_pct,
                rng,
                timeout_ms,
                max_attempts,
                op_gap_us,
                epoch,
                log_ops,
            )
        }));
    }

    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut aborted = 0u64;
    let mut retries = 0u64;
    let mut read_us = Histogram::new();
    let mut write_us = Histogram::new();
    let mut rows: Vec<OpRow> = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(r)) => {
                issued += r.issued;
                completed += r.completed;
                aborted += r.aborted;
                retries += r.retries;
                read_us.merge(&r.read_us);
                write_us.merge(&r.write_us);
                rows.extend(r.rows);
            }
            Ok(Err(e)) => {
                eprintln!("svc_load: thread: {e}");
                exit(1)
            }
            Err(_) => {
                eprintln!("svc_load: thread panicked");
                exit(1)
            }
        }
    }
    let elapsed_ms = epoch.elapsed().as_millis().max(1) as u64;

    if let Some(path) = &log_ops_path {
        rows.sort_by_key(|r| r.invoked_us);
        let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("svc_load: {path}: {e}");
            exit(1)
        }));
        for r in &rows {
            let resp = match r.response {
                Some(RegResp::Ack) => "\"ack\"".to_string(),
                Some(RegResp::Value(Some(v))) => v.to_string(),
                Some(RegResp::Value(None)) => "\"bot\"".to_string(),
                None => "null".to_string(),
            };
            writeln!(
                f,
                "{{\"pid\": {}, \"op\": \"{}\", \"value\": {}, \"invoked_us\": {}, \
                 \"responded_us\": {}, \"response\": {}, \"aborted\": {}}}",
                r.pid,
                if r.write { "w" } else { "r" },
                r.value,
                r.invoked_us,
                r.responded_us,
                resp,
                r.aborted,
            )
            .unwrap();
        }
    }

    let summary = format!(
        "{{\"role\": \"load\", \"threads\": {threads}, \"clients\": {clients}, \
         \"issued\": {issued}, \"completed\": {completed}, \"aborted\": {aborted}, \
         \"retries\": {retries}, \"elapsed_ms\": {elapsed_ms}, \"ops_per_sec\": {:.1}, \
         \"read_us\": {}, \"write_us\": {}}}",
        completed as f64 * 1000.0 / elapsed_ms as f64,
        read_us.to_json(),
        write_us.to_json(),
    );
    if let Some(path) = &out_path {
        std::fs::write(path, format!("{summary}\n")).unwrap_or_else(|e| {
            eprintln!("svc_load: {path}: {e}");
            exit(1)
        });
    }
    println!("{summary}");
}
