//! The networked host: sockets, connections, and the event loop that
//! drives sans-io [`StoreCore`]s over them.
//!
//! A [`Host`] owns one or more protocol identities (a replica hosts
//! one; a load-generator thread hosts many clients), an optional
//! listening socket, an optional connection to the seed registry, and a
//! set of peer connections. One [`Host::tick`] is one event-loop
//! iteration:
//!
//! 1. expire due timers on the [`TimerWheel`] and step their cores,
//! 2. drain the local delivery queue (messages between hosted cores and
//!    outputs produced by steps),
//! 3. `poll(2)` on the listener and every connection — the timeout is
//!    the earliest pending timer deadline,
//! 4. accept/read/dispatch: decode frames, route `Proto` frames to the
//!    addressed core, apply `Roster` updates, learn routes from `Hello`s,
//! 5. flush every connection's coalesced write buffer (one `write` per
//!    connection per tick, no matter how many frames were queued).
//!
//! ## Identity, discovery, routing
//!
//! Processes are known by their protocol [`ProcessId`]. The seed's
//! `Roster` broadcast maps pids to roles and dial-back addresses;
//! cores are only started (fed [`CoreIn::Start`]) once the first roster
//! arrives, so a joiner's `Announce` reaches the replicas that must
//! learn it as a reconfiguration candidate. Outbound messages to a pid
//! with no live connection trigger a dial of its roster address; pids
//! with no dialable address (clients, dead peers) have the message
//! dropped silently — the same lossy-link semantics the protocol
//! already survives in the simulator, covered by its timers.
//!
//! ## Time
//!
//! One protocol tick is one millisecond: `step` is fed
//! `Time::from_ticks(ms since host epoch)`. The epoch is shared across a
//! process's hosts so timestamps from different load threads are
//! comparable.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Instant;

use dds_core::process::ProcessId;
use dds_core::time::{Time, TimeDelta};
use dds_store::msg::StoreMsg;
use dds_store::protocol::{CoreIn, CoreOut, StoreCore, StoreParams, TimerToken};

use crate::codec::{decode_frame, encode_frame, FrameReader, WireMsg, ROLE_REPLICA};
use crate::poller::{poll_fds, PollFd};
use crate::wheel::TimerWheel;

/// Protocol parameters scaled for real networks (1 tick = 1 ms): socket
/// round-trips are microseconds, so the timeouts are dominated by
/// scheduling noise and kill/restart churn, not message latency.
pub fn net_params(initial: Vec<ProcessId>) -> StoreParams {
    StoreParams {
        initial,
        replica_count: 3,
        min_quorum: 0,
        write_back: true,
        epoch_fencing: true,
        op_timeout: TimeDelta::ticks(250),
        max_attempts: 6,
        probe_every: Some(TimeDelta::ticks(200)),
        suspect_after: TimeDelta::ticks(900),
        view_delta: TimeDelta::ticks(5_000),
    }
}

/// A service endpoint: `uds:<path>` or `tcp:<host:port>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// Unix-domain socket path.
    Uds(String),
    /// TCP host:port.
    Tcp(String),
}

impl Addr {
    /// Parses `uds:<path>` / `tcp:<host:port>`.
    pub fn parse(s: &str) -> Result<Addr, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            Ok(Addr::Uds(path.to_string()))
        } else if let Some(hp) = s.strip_prefix("tcp:") {
            Ok(Addr::Tcp(hp.to_string()))
        } else {
            Err(format!("address {s:?} must start with uds: or tcp:"))
        }
    }

    /// The canonical string form (parseable by [`Addr::parse`]).
    pub fn display(&self) -> String {
        match self {
            Addr::Uds(p) => format!("uds:{p}"),
            Addr::Tcp(hp) => format!("tcp:{hp}"),
        }
    }

    /// Binds a non-blocking listener. A stale UDS path from a killed
    /// predecessor is unlinked first.
    pub fn listen(&self) -> io::Result<Listener> {
        match self {
            Addr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Uds(l))
            }
            Addr::Tcp(hp) => {
                let l = TcpListener::bind(hp)?;
                l.set_nonblocking(true)?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Connects (blocking — dials are rare) and switches the stream to
    /// non-blocking for the event loop.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Addr::Uds(path) => {
                let s = UnixStream::connect(path)?;
                s.set_nonblocking(true)?;
                Ok(Stream::Uds(s))
            }
            Addr::Tcp(hp) => {
                let s = TcpStream::connect(hp)?;
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                Ok(Stream::Tcp(s))
            }
        }
    }
}

/// A non-blocking listening socket (UDS or TCP).
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain listener.
    Uds(UnixListener),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Accepts one pending connection, or `None` when none is queued.
    pub fn accept(&self) -> io::Result<Option<Stream>> {
        match self {
            Listener::Uds(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(true)?;
                    Ok(Some(Stream::Uds(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true)?;
                    s.set_nonblocking(true)?;
                    Ok(Some(Stream::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    /// The raw fd, for polling.
    pub fn raw_fd(&self) -> i32 {
        match self {
            Listener::Uds(l) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }
}

/// A non-blocking connected socket (UDS or TCP).
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain stream.
    Uds(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    fn raw_fd(&self) -> i32 {
        match self {
            Stream::Uds(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
}

/// One live connection: stream, frame reassembly, and the coalescing
/// write buffer.
#[derive(Debug)]
pub struct Conn {
    stream: Stream,
    reader: FrameReader,
    /// Frames queued for sending; flushed once per tick.
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written.
    wpos: usize,
    dead: bool,
}

impl Conn {
    /// Wraps a connected non-blocking stream.
    pub fn new(stream: Stream) -> Self {
        Conn {
            stream,
            reader: FrameReader::new(),
            wbuf: Vec::new(),
            wpos: 0,
            dead: false,
        }
    }

    /// Appends one frame to the write buffer (no syscall).
    pub fn queue(&mut self, msg: &WireMsg) {
        encode_frame(&mut self.wbuf, msg);
    }

    /// Bytes queued but not yet written.
    pub fn backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Writes as much of the buffer as the socket accepts. The buffer is
    /// reset (capacity kept) once fully drained.
    pub fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
    }

    /// Reads everything available into the frame reassembler. Returns
    /// `true` if any bytes arrived. EOF or a hard error marks the
    /// connection dead (frames already buffered stay decodable).
    pub fn fill(&mut self, scratch: &mut [u8]) -> bool {
        let mut any = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.reader.extend(&scratch[..n]);
                    any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        any
    }

    /// The underlying fd, for polling.
    pub fn raw_fd(&self) -> i32 {
        self.stream.raw_fd()
    }

    /// Whether the peer is gone (EOF, hard error, or malformed frame).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Force-marks the connection dead.
    pub fn mark_dead(&mut self) {
        self.dead = true;
    }

    /// Decodes the next complete buffered frame. A malformed or
    /// oversized frame marks the connection dead and yields `None`.
    pub fn next_msg(&mut self) -> Option<WireMsg> {
        match self.reader.next_payload() {
            Ok(Some(payload)) => match decode_frame(payload) {
                Ok(m) => Some(m),
                Err(_) => {
                    self.dead = true;
                    None
                }
            },
            Ok(None) => None,
            Err(_) => {
                self.dead = true;
                None
            }
        }
    }
}

/// Configuration of a [`Host`].
#[derive(Debug, Clone)]
pub struct HostCfg {
    /// Address to listen on (replicas); `None` for client-only hosts.
    pub listen: Option<Addr>,
    /// The seed registry to join through; `None` runs rosterless (cores
    /// start immediately with empty peers — loopback tests).
    pub seed: Option<Addr>,
    /// Role advertised in `Hello`s ([`ROLE_REPLICA`] / `ROLE_CLIENT`).
    pub role: u8,
}

struct CoreSlot {
    pid: ProcessId,
    core: StoreCore,
}

/// Backoff before re-dialing an address that refused, in ms.
const REDIAL_MS: u64 = 50;
/// Read scratch size; also the natural upper bound on bytes handled per
/// connection per tick.
const SCRATCH: usize = 64 * 1024;

/// The event-loop host driving hosted [`StoreCore`]s over sockets.
pub struct Host {
    cfg: HostCfg,
    epoch: Instant,
    cores: Vec<CoreSlot>,
    by_pid: HashMap<u64, usize>,
    started: bool,

    listener: Option<Listener>,
    conns: Vec<Option<Conn>>,
    /// Seed connection slot, if joined through a seed.
    seed_slot: Option<usize>,
    /// Protocol pid → connection slot.
    route: HashMap<u64, usize>,
    /// pid → ms timestamp before which we will not re-dial it.
    dial_backoff: HashMap<u64, u64>,

    roster: Vec<(ProcessId, u8, String)>,
    /// Replica-role pids from the roster (excludes our own identities).
    peer_replicas: Vec<ProcessId>,

    wheel: TimerWheel,

    // Reused scratch (steady state allocates nothing here).
    out: Vec<CoreOut>,
    fired: Vec<TimerToken>,
    local_q: VecDeque<(usize, ProcessId, StoreMsg)>,
    scratch: Box<[u8]>,
    pollfds: Vec<PollFd>,
    /// pollfds[i] maps to conn slot poll_map[i] (usize::MAX = listener).
    poll_map: Vec<usize>,
}

/// Packs a per-core timer token into one wheel key. Core tokens are
/// step-allocated counters, far below 2^48; core indexes are tiny.
fn pack(core_idx: usize, token: TimerToken) -> TimerToken {
    TimerToken(((core_idx as u64) << 48) | token.as_raw())
}

fn unpack(packed: TimerToken) -> (usize, TimerToken) {
    (
        (packed.as_raw() >> 48) as usize,
        TimerToken(packed.as_raw() & ((1 << 48) - 1)),
    )
}

impl Host {
    /// Builds the host: binds `cfg.listen`, dials `cfg.seed` and sends
    /// one `Hello` per hosted core. `epoch` is the process-wide time
    /// origin (share one `Instant` across hosts so timestamps align).
    pub fn new(
        cfg: HostCfg,
        cores: Vec<(ProcessId, StoreParams)>,
        epoch: Instant,
    ) -> io::Result<Host> {
        let listener = match &cfg.listen {
            Some(a) => Some(a.listen()?),
            None => None,
        };
        let mut host = Host {
            by_pid: cores
                .iter()
                .enumerate()
                .map(|(i, (p, _))| (p.as_raw(), i))
                .collect(),
            cores: cores
                .into_iter()
                .map(|(pid, params)| CoreSlot {
                    pid,
                    core: StoreCore::new(params),
                })
                .collect(),
            started: false,
            listener,
            conns: Vec::new(),
            seed_slot: None,
            route: HashMap::new(),
            dial_backoff: HashMap::new(),
            roster: Vec::new(),
            peer_replicas: Vec::new(),
            wheel: TimerWheel::new(),
            out: Vec::new(),
            fired: Vec::new(),
            local_q: VecDeque::new(),
            scratch: vec![0u8; SCRATCH].into_boxed_slice(),
            pollfds: Vec::new(),
            poll_map: Vec::new(),
            epoch,
            cfg,
        };
        if let Some(seed) = host.cfg.seed.clone() {
            let stream = seed.connect()?;
            let slot = host.add_conn(stream);
            host.seed_slot = Some(slot);
            host.send_hellos(slot);
        } else {
            host.start_cores();
        }
        Ok(host)
    }

    /// Milliseconds since the host epoch (= protocol ticks).
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Whether the cores have been started (first roster seen, or no
    /// seed configured).
    pub fn started(&self) -> bool {
        self.started
    }

    /// The current roster.
    pub fn roster(&self) -> &[(ProcessId, u8, String)] {
        &self.roster
    }

    /// Read access to hosted core `i` (injection-order index).
    pub fn core(&self, i: usize) -> &StoreCore {
        &self.cores[i].core
    }

    /// The pid of hosted core `i`.
    pub fn pid(&self, i: usize) -> ProcessId {
        self.cores[i].pid
    }

    /// Injects a message into hosted core `i` as if self-addressed
    /// (operation invocations). Outputs are routed immediately.
    pub fn inject(&mut self, i: usize, msg: StoreMsg) {
        let me = self.cores[i].pid;
        self.local_q.push_back((i, me, msg));
        self.drain_local();
    }

    fn send_hellos(&mut self, slot: usize) {
        let addr = self
            .cfg
            .listen
            .as_ref()
            .map(|a| a.display())
            .unwrap_or_default();
        let role = self.cfg.role;
        let hellos: Vec<WireMsg> = self
            .cores
            .iter()
            .map(|c| WireMsg::Hello {
                pid: c.pid,
                role,
                addr: addr.clone(),
            })
            .collect();
        if let Some(conn) = self.conns[slot].as_mut() {
            for h in &hellos {
                conn.queue(h);
            }
        }
    }

    fn add_conn(&mut self, stream: Stream) -> usize {
        let conn = Conn::new(stream);
        for (i, slot) in self.conns.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(conn);
                return i;
            }
        }
        self.conns.push(Some(conn));
        self.conns.len() - 1
    }

    /// The peer hint for a stepping core: replicas see every replica in
    /// the roster except themselves (announce targets, view widening);
    /// clients see the replicas too, except at `Start`, where an empty
    /// hint keeps them from announcing themselves as reconfiguration
    /// candidates (a client cannot be dialed, so it must never be drafted
    /// into a configuration).
    fn peers_for(&self, core_idx: usize, starting: bool) -> Vec<ProcessId> {
        if starting && self.cfg.role != ROLE_REPLICA {
            return Vec::new();
        }
        let me = self.cores[core_idx].pid;
        self.peer_replicas
            .iter()
            .copied()
            .filter(|&p| p != me)
            .collect()
    }

    fn start_cores(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let now = Time::from_ticks(self.now_ms());
        for i in 0..self.cores.len() {
            let peers = self.peers_for(i, true);
            let me = self.cores[i].pid;
            let mut out = std::mem::take(&mut self.out);
            self.cores[i]
                .core
                .step(now, me, &peers, CoreIn::Start, &mut out);
            self.out = out;
            self.route_outputs(i);
        }
        self.drain_local();
    }

    /// Dispatches everything the last step appended to `self.out`.
    fn route_outputs(&mut self, core_idx: usize) {
        let now_ms = self.now_ms();
        let from = self.cores[core_idx].pid;
        let mut out = std::mem::take(&mut self.out);
        for effect in out.drain(..) {
            match effect {
                CoreOut::SetTimer { token, delay } => {
                    self.wheel
                        .schedule(now_ms + delay.as_ticks().max(1), pack(core_idx, token));
                }
                CoreOut::Send { to, msg } => {
                    if let Some(&local) = self.by_pid.get(&to.as_raw()) {
                        self.local_q.push_back((local, from, msg));
                    } else {
                        self.send_remote(from, to, msg);
                    }
                }
            }
        }
        self.out = out;
    }

    /// Queues a `Proto` frame towards `to`, dialing its roster address
    /// if no connection exists. Undialable or refusing destinations drop
    /// the message (lossy-link semantics; protocol timers cover it).
    fn send_remote(&mut self, from: ProcessId, to: ProcessId, msg: StoreMsg) {
        let slot = match self.route.get(&to.as_raw()) {
            Some(&s) if self.conns[s].as_ref().is_some_and(|c| !c.dead) => s,
            _ => {
                let Some(slot) = self.dial(to) else { return };
                slot
            }
        };
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.queue(&WireMsg::Proto { from, to, msg });
        }
    }

    fn dial(&mut self, to: ProcessId) -> Option<usize> {
        let now_ms = self.now_ms();
        if self
            .dial_backoff
            .get(&to.as_raw())
            .is_some_and(|&until| now_ms < until)
        {
            return None;
        }
        let addr = self
            .roster
            .iter()
            .find(|(p, _, a)| *p == to && !a.is_empty())
            .map(|(_, _, a)| a.clone())?;
        let addr = Addr::parse(&addr).ok()?;
        match addr.connect() {
            Ok(stream) => {
                let slot = self.add_conn(stream);
                self.send_hellos(slot);
                self.route.insert(to.as_raw(), slot);
                self.dial_backoff.remove(&to.as_raw());
                Some(slot)
            }
            Err(_) => {
                self.dial_backoff.insert(to.as_raw(), now_ms + REDIAL_MS);
                None
            }
        }
    }

    /// Steps queued local deliveries until quiescent.
    fn drain_local(&mut self) {
        while let Some((idx, from, msg)) = self.local_q.pop_front() {
            let now = Time::from_ticks(self.now_ms());
            let peers = self.peers_for(idx, false);
            let me = self.cores[idx].pid;
            let mut out = std::mem::take(&mut self.out);
            self.cores[idx]
                .core
                .step(now, me, &peers, CoreIn::Message { from, msg }, &mut out);
            self.out = out;
            self.route_outputs(idx);
        }
    }

    fn apply_roster(&mut self, entries: Vec<(ProcessId, u8, String)>) {
        self.roster = entries;
        self.peer_replicas = self
            .roster
            .iter()
            .filter(|(p, role, _)| *role == ROLE_REPLICA && !self.by_pid.contains_key(&p.as_raw()))
            .map(|(p, _, _)| *p)
            .collect();
        // A fresh address for a pid invalidates any backoff.
        self.dial_backoff.clear();
        self.start_cores();
    }

    fn dispatch_frame(&mut self, slot: usize, msg: WireMsg) {
        match msg {
            WireMsg::Hello { pid, .. } => {
                self.route.insert(pid.as_raw(), slot);
            }
            WireMsg::Roster { entries } => {
                if self.seed_slot == Some(slot) {
                    self.apply_roster(entries);
                }
            }
            WireMsg::Proto { from, to, msg } => {
                if let Some(&idx) = self.by_pid.get(&to.as_raw()) {
                    self.local_q.push_back((idx, from, msg));
                }
            }
        }
    }

    /// One event-loop iteration; blocks at most `max_wait_ms` (less when
    /// a timer is due sooner). Returns the number of frames processed.
    pub fn tick(&mut self, max_wait_ms: u64) -> io::Result<usize> {
        // 1. timers
        let now_ms = self.now_ms();
        let mut fired = std::mem::take(&mut self.fired);
        self.wheel.expire(now_ms, &mut fired);
        for packed in fired.drain(..) {
            let (idx, token) = unpack(packed);
            let now = Time::from_ticks(self.now_ms());
            let peers = self.peers_for(idx, false);
            let me = self.cores[idx].pid;
            let mut out = std::mem::take(&mut self.out);
            self.cores[idx]
                .core
                .step(now, me, &peers, CoreIn::Timer(token), &mut out);
            self.out = out;
            self.route_outputs(idx);
        }
        self.fired = fired;
        // 2. local deliveries produced by timers
        self.drain_local();

        // 3. flush everything queued before sleeping
        for conn in self.conns.iter_mut().flatten() {
            if conn.backlog() > 0 && !conn.dead {
                conn.flush();
            }
        }

        // 4. poll
        self.pollfds.clear();
        self.poll_map.clear();
        if let Some(l) = &self.listener {
            self.pollfds.push(PollFd::new(l.raw_fd(), true, false));
            self.poll_map.push(usize::MAX);
        }
        for (i, conn) in self.conns.iter().enumerate() {
            if let Some(c) = conn {
                if c.dead {
                    continue;
                }
                self.pollfds
                    .push(PollFd::new(c.stream.raw_fd(), true, c.backlog() > 0));
                self.poll_map.push(i);
            }
        }
        let timeout = match self.wheel.next_deadline() {
            Some(d) => d.saturating_sub(self.now_ms()).min(max_wait_ms),
            None => max_wait_ms,
        };
        if self.pollfds.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(timeout));
            return Ok(0);
        }
        poll_fds(&mut self.pollfds, Some(timeout as u32))?;

        // 5. accept + read + dispatch
        let mut processed = 0;
        for pi in 0..self.pollfds.len() {
            let fd = self.pollfds[pi];
            let slot = self.poll_map[pi];
            if slot == usize::MAX {
                if fd.readable() {
                    while let Some(stream) = self.listener.as_ref().unwrap().accept()? {
                        self.add_conn(stream);
                    }
                }
                continue;
            }
            if fd.readable() {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                conn.fill(&mut self.scratch);
                while let Some(msg) = self.conns[slot].as_mut().and_then(Conn::next_msg) {
                    processed += 1;
                    self.dispatch_frame(slot, msg);
                }
                self.drain_local();
            } else if fd.writable() {
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.flush();
                }
            }
        }

        // 6. flush replies generated this tick
        for conn in self.conns.iter_mut().flatten() {
            if conn.backlog() > 0 && !conn.dead {
                conn.flush();
            }
        }

        // 7. reap dead connections
        for i in 0..self.conns.len() {
            if self.conns[i].as_ref().is_some_and(|c| c.dead) {
                self.conns[i] = None;
                self.route.retain(|_, &mut s| s != i);
                if self.seed_slot == Some(i) {
                    self.seed_slot = None;
                }
            }
        }
        Ok(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_roundtrip() {
        let u = Addr::parse("uds:/tmp/x.sock").unwrap();
        assert_eq!(u, Addr::Uds("/tmp/x.sock".into()));
        assert_eq!(Addr::parse(&u.display()).unwrap(), u);
        let t = Addr::parse("tcp:127.0.0.1:9000").unwrap();
        assert_eq!(t, Addr::Tcp("127.0.0.1:9000".into()));
        assert!(Addr::parse("/tmp/x.sock").is_err());
    }

    #[test]
    fn tcp_loopback_frames_roundtrip() {
        let listener = Addr::Tcp("127.0.0.1:0".into()).listen().unwrap();
        let port = match &listener {
            Listener::Tcp(l) => l.local_addr().unwrap().port(),
            _ => unreachable!(),
        };
        let mut client = Conn::new(Addr::Tcp(format!("127.0.0.1:{port}")).connect().unwrap());
        client.queue(&WireMsg::Hello {
            pid: ProcessId::from_raw(9),
            role: ROLE_REPLICA,
            addr: "tcp:127.0.0.1:1".into(),
        });
        client.flush();
        let mut server = None;
        for _ in 0..100 {
            if let Some(s) = listener.accept().unwrap() {
                server = Some(Conn::new(s));
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut server = server.expect("accept");
        let mut scratch = vec![0u8; 4096];
        for _ in 0..100 {
            server.fill(&mut scratch);
            if let Some(p) = server.reader.next_payload().unwrap() {
                let msg = decode_frame(p).unwrap();
                assert_eq!(
                    msg,
                    WireMsg::Hello {
                        pid: ProcessId::from_raw(9),
                        role: ROLE_REPLICA,
                        addr: "tcp:127.0.0.1:1".into(),
                    }
                );
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("frame never arrived");
    }
}
