//! Minimal readiness polling over `poll(2)`.
//!
//! The build is offline (no libc crate), but std already links the C
//! library on every unix target, so the one syscall wrapper the event
//! loop needs is declared directly. `poll` is the right primitive here:
//! the fd sets are tiny (a listener plus a handful of peer connections),
//! rebuilt per iteration from live connection state, so the O(n) scan is
//! noise and no registration state can go stale.

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (`POLLIN`).
pub const POLL_IN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLL_OUT: i16 = 0x004;
/// Error condition (`POLLERR`) — always reported, never requested.
pub const POLL_ERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`) — always reported, never requested.
pub const POLL_HUP: i16 = 0x010;

/// One entry of the `poll(2)` fd array (`struct pollfd`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLL_IN`] / [`POLL_OUT`]).
    pub events: i16,
    /// Returned events (includes [`POLL_ERR`] / [`POLL_HUP`]).
    pub revents: i16,
}

impl PollFd {
    /// Watches `fd` for the given readiness.
    pub fn new(fd: RawFd, read: bool, write: bool) -> Self {
        let mut events = 0;
        if read {
            events |= POLL_IN;
        }
        if write {
            events |= POLL_OUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the fd came back readable (or in an error/hangup state,
    /// which a read will surface as 0/`Err`).
    pub fn readable(&self) -> bool {
        self.revents & (POLL_IN | POLL_ERR | POLL_HUP) != 0
    }

    /// Whether the fd came back writable.
    pub fn writable(&self) -> bool {
        self.revents & (POLL_OUT | POLL_ERR | POLL_HUP) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until any watched fd is ready or `timeout_ms` elapses
/// (`None` = block indefinitely). Returns the number of ready entries;
/// `fds[i].revents` carries per-fd readiness. `EINTR` is treated as a
/// zero-ready wakeup (the event loop re-derives its timeout anyway).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: Option<u32>) -> io::Result<usize> {
    for f in fds.iter_mut() {
        f.revents = 0;
    }
    let timeout = match timeout_ms {
        None => -1,
        // poll takes an i32 of milliseconds; clamp rather than wrap.
        Some(ms) => ms.min(i32::MAX as u32) as i32,
    };
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn pipe_readiness_is_reported() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), true, false)];
        // Nothing to read yet: times out.
        assert_eq!(poll_fds(&mut fds, Some(0)).unwrap(), 0);
        assert!(!fds[0].readable());
        a.write_all(b"x").unwrap();
        assert_eq!(poll_fds(&mut fds, Some(1000)).unwrap(), 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), false, true)];
        assert_eq!(poll_fds(&mut fds, Some(1000)).unwrap(), 1);
        assert!(fds[0].writable());
    }
}
