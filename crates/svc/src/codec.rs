//! Length-prefixed binary wire codec for the storage service.
//!
//! Every unit on the wire is a **frame**: a little-endian `u32` payload
//! length followed by that many payload bytes. The payload is a
//! [`WireMsg`] — a one-byte kind, then the fields in fixed little-endian
//! layouts (variable-length collections carry a `u32` count). Frames are
//! self-delimiting, so any number of them can be packed back-to-back
//! into one socket write (the event loop's per-connection coalescing)
//! and chopped arbitrarily by the transport (the [`FrameReader`]
//! reassembles split frames across reads).
//!
//! ## Allocation discipline
//!
//! The encode path appends to a caller-owned `Vec<u8>` and the decode
//! path borrows from the [`FrameReader`]'s internal buffer; both reuse
//! their buffers across messages, so once the buffers have grown to the
//! working-set size the steady-state encode/decode of the hot operation
//! messages ([`StoreMsg::Query`], [`StoreMsg::QueryAck`],
//! [`StoreMsg::Store`], [`StoreMsg::StoreAck`], [`StoreMsg::Invoke`])
//! performs **zero heap allocations** — pinned by the counting-allocator
//! test in `tests/codec_alloc.rs`, the same technique as the simulator's
//! `noop_alloc`. Messages carrying member lists (reconfiguration path)
//! allocate exactly their `Vec`s on decode.
//!
//! ## Robustness
//!
//! Decoding never panics: truncated payloads, unknown kinds/tags,
//! non-UTF-8 addresses, and oversized or short frames all surface as
//! [`CodecError`]s (property-tested in `tests/codec_props.rs`, including
//! garbage prefixes and random split points). A frame longer than
//! [`MAX_FRAME`] is rejected *before* buffering, so a corrupt length
//! prefix cannot balloon memory.

use dds_core::process::ProcessId;
use dds_core::spec::register::RegOp;
use dds_store::msg::{OpTag, Stamp, StoreMsg};

/// Upper bound on a frame payload. Generously above the largest honest
/// message (a roster or member list of [`MAX_LIST`] entries), far below
/// anything that could hurt: a length prefix beyond this is garbage.
pub const MAX_FRAME: usize = 1 << 20;

/// Upper bound on decoded collection lengths (members, candidates,
/// roster entries). Honest deployments are tiny; a huge count with a
/// small payload is rejected by the truncation checks anyway, but
/// bounding it first keeps the worst case O(small).
pub const MAX_LIST: usize = 4096;

/// Why a payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the message did.
    Truncated,
    /// Unknown message kind or `StoreMsg` tag byte.
    BadTag(u8),
    /// A declared frame or collection length exceeds its bound.
    TooLarge(usize),
    /// The payload has bytes left over after the message.
    TrailingBytes(usize),
    /// An address field is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::TooLarge(n) => write!(f, "declared length {n} over bound"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            CodecError::BadUtf8 => write!(f, "address not utf-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Everything that crosses a service socket.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Connection preamble: who is speaking on this connection. A
    /// process hosting several protocol identities (a load generator
    /// thread) sends one `Hello` per identity; `addr` is where the
    /// sender can be dialed back, empty for processes that do not
    /// listen (clients).
    Hello {
        /// The protocol identity.
        pid: ProcessId,
        /// [`ROLE_REPLICA`] or [`ROLE_CLIENT`].
        role: u8,
        /// Dial-back address (`uds:<path>` / `tcp:<host:port>`), or
        /// empty.
        addr: String,
    },
    /// The seed's membership broadcast: every identity it currently
    /// knows, with role and dial address.
    Roster {
        /// `(pid, role, addr)` per known process, in pid order.
        entries: Vec<(ProcessId, u8, String)>,
    },
    /// A protocol message from `from` to `to` (frames are addressed so
    /// one connection can multiplex many hosted identities).
    Proto {
        /// Sending protocol identity.
        from: ProcessId,
        /// Receiving protocol identity.
        to: ProcessId,
        /// The protocol payload.
        msg: StoreMsg,
    },
}

/// `Hello::role` of a quorum replica (listens, serves phases).
pub const ROLE_REPLICA: u8 = 0;
/// `Hello::role` of a client-only process (does not listen).
pub const ROLE_CLIENT: u8 = 1;

// --- encoding ------------------------------------------------------------

#[inline]
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_pid(buf: &mut Vec<u8>, p: ProcessId) {
    put_u64(buf, p.as_raw());
}

#[inline]
fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
        None => buf.push(0),
    }
}

#[inline]
fn put_stamp(buf: &mut Vec<u8>, s: Stamp) {
    put_u64(buf, s.seq);
    put_u64(buf, s.writer);
}

#[inline]
fn put_tag(buf: &mut Vec<u8>, t: OpTag) {
    put_u64(buf, t.seq);
    put_u32(buf, t.attempt);
}

fn put_pids(buf: &mut Vec<u8>, pids: &[ProcessId]) {
    put_u32(buf, pids.len() as u32);
    for &p in pids {
        put_pid(buf, p);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_reg_op(buf: &mut Vec<u8>, op: RegOp) {
    match op {
        RegOp::Read => buf.push(0),
        RegOp::Write(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
    }
}

fn put_store_msg(buf: &mut Vec<u8>, msg: &StoreMsg) {
    match msg {
        StoreMsg::Invoke(op) => {
            buf.push(0);
            put_reg_op(buf, *op);
        }
        StoreMsg::Reconfigure { members } => {
            buf.push(1);
            put_pids(buf, members);
        }
        StoreMsg::Query { tag, epoch } => {
            buf.push(2);
            put_tag(buf, *tag);
            put_u64(buf, *epoch);
        }
        StoreMsg::Store { tag, epoch, stamp, value } => {
            buf.push(3);
            put_tag(buf, *tag);
            put_u64(buf, *epoch);
            put_stamp(buf, *stamp);
            put_opt_u64(buf, *value);
        }
        StoreMsg::ViewReq => buf.push(4),
        StoreMsg::QueryAck { tag, stamp, value } => {
            buf.push(5);
            put_tag(buf, *tag);
            put_stamp(buf, *stamp);
            put_opt_u64(buf, *value);
        }
        StoreMsg::StoreAck { tag } => {
            buf.push(6);
            put_tag(buf, *tag);
        }
        StoreMsg::Fenced { tag, epoch, members } => {
            buf.push(7);
            put_tag(buf, *tag);
            put_u64(buf, *epoch);
            put_pids(buf, members);
        }
        StoreMsg::ViewRep { epoch, members } => {
            buf.push(8);
            put_u64(buf, *epoch);
            put_pids(buf, members);
        }
        StoreMsg::Announce => buf.push(9),
        StoreMsg::Announce2 { joiner } => {
            buf.push(10);
            put_pid(buf, *joiner);
        }
        StoreMsg::Probe { epoch } => {
            buf.push(11);
            put_u64(buf, *epoch);
        }
        StoreMsg::ProbeAck { epoch, candidates } => {
            buf.push(12);
            put_u64(buf, *epoch);
            put_pids(buf, candidates);
        }
        StoreMsg::RecQuery { epoch, members } => {
            buf.push(13);
            put_u64(buf, *epoch);
            put_pids(buf, members);
        }
        StoreMsg::RecAck { epoch, base, stamp, value } => {
            buf.push(14);
            put_u64(buf, *epoch);
            put_u64(buf, *base);
            put_stamp(buf, *stamp);
            put_opt_u64(buf, *value);
        }
        StoreMsg::Migrate { epoch, members, stamp, value } => {
            buf.push(15);
            put_u64(buf, *epoch);
            put_pids(buf, members);
            put_stamp(buf, *stamp);
            put_opt_u64(buf, *value);
        }
        StoreMsg::MigrateAck { epoch } => {
            buf.push(16);
            put_u64(buf, *epoch);
        }
    }
}

/// Appends one framed message to `buf` (length prefix included). `buf`
/// is the connection's coalescing write buffer: successive calls pack
/// frames back-to-back and one `write` flushes them all.
pub fn encode_frame(buf: &mut Vec<u8>, msg: &WireMsg) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    match msg {
        WireMsg::Hello { pid, role, addr } => {
            buf.push(0);
            put_pid(buf, *pid);
            buf.push(*role);
            put_str(buf, addr);
        }
        WireMsg::Roster { entries } => {
            buf.push(1);
            put_u32(buf, entries.len() as u32);
            for (pid, role, addr) in entries {
                put_pid(buf, *pid);
                buf.push(*role);
                put_str(buf, addr);
            }
        }
        WireMsg::Proto { from, to, msg } => {
            buf.push(2);
            put_pid(buf, *from);
            put_pid(buf, *to);
            put_store_msg(buf, msg);
        }
    }
    let payload = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&payload.to_le_bytes());
}

// --- decoding ------------------------------------------------------------

/// A zero-copy cursor over one frame payload.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.at + n > self.b.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.b[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn pid(&mut self) -> Result<ProcessId, CodecError> {
        Ok(ProcessId::from_raw(self.u64()?))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    fn stamp(&mut self) -> Result<Stamp, CodecError> {
        Ok(Stamp {
            seq: self.u64()?,
            writer: self.u64()?,
        })
    }

    fn tag(&mut self) -> Result<OpTag, CodecError> {
        Ok(OpTag {
            seq: self.u64()?,
            attempt: self.u32()?,
        })
    }

    fn list_len(&mut self) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_LIST {
            return Err(CodecError::TooLarge(n));
        }
        Ok(n)
    }

    fn pids(&mut self) -> Result<Vec<ProcessId>, CodecError> {
        let n = self.list_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.pid()?);
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(CodecError::TooLarge(n));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    fn reg_op(&mut self) -> Result<RegOp, CodecError> {
        match self.u8()? {
            0 => Ok(RegOp::Read),
            1 => Ok(RegOp::Write(self.u64()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    fn store_msg(&mut self) -> Result<StoreMsg, CodecError> {
        Ok(match self.u8()? {
            0 => StoreMsg::Invoke(self.reg_op()?),
            1 => StoreMsg::Reconfigure { members: self.pids()? },
            2 => StoreMsg::Query {
                tag: self.tag()?,
                epoch: self.u64()?,
            },
            3 => StoreMsg::Store {
                tag: self.tag()?,
                epoch: self.u64()?,
                stamp: self.stamp()?,
                value: self.opt_u64()?,
            },
            4 => StoreMsg::ViewReq,
            5 => StoreMsg::QueryAck {
                tag: self.tag()?,
                stamp: self.stamp()?,
                value: self.opt_u64()?,
            },
            6 => StoreMsg::StoreAck { tag: self.tag()? },
            7 => StoreMsg::Fenced {
                tag: self.tag()?,
                epoch: self.u64()?,
                members: self.pids()?,
            },
            8 => StoreMsg::ViewRep {
                epoch: self.u64()?,
                members: self.pids()?,
            },
            9 => StoreMsg::Announce,
            10 => StoreMsg::Announce2 { joiner: self.pid()? },
            11 => StoreMsg::Probe { epoch: self.u64()? },
            12 => StoreMsg::ProbeAck {
                epoch: self.u64()?,
                candidates: self.pids()?,
            },
            13 => StoreMsg::RecQuery {
                epoch: self.u64()?,
                members: self.pids()?,
            },
            14 => StoreMsg::RecAck {
                epoch: self.u64()?,
                base: self.u64()?,
                stamp: self.stamp()?,
                value: self.opt_u64()?,
            },
            15 => StoreMsg::Migrate {
                epoch: self.u64()?,
                members: self.pids()?,
                stamp: self.stamp()?,
                value: self.opt_u64()?,
            },
            16 => StoreMsg::MigrateAck { epoch: self.u64()? },
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

/// Decodes one frame payload (no length prefix). The whole payload must
/// be consumed — trailing bytes are an error, so a frame cannot smuggle
/// a second message past the reader.
pub fn decode_frame(payload: &[u8]) -> Result<WireMsg, CodecError> {
    let mut c = Cur { b: payload, at: 0 };
    let msg = match c.u8()? {
        0 => WireMsg::Hello {
            pid: c.pid()?,
            role: c.u8()?,
            addr: c.string()?,
        },
        1 => {
            let n = c.list_len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((c.pid()?, c.u8()?, c.string()?));
            }
            WireMsg::Roster { entries }
        }
        2 => WireMsg::Proto {
            from: c.pid()?,
            to: c.pid()?,
            msg: c.store_msg()?,
        },
        t => return Err(CodecError::BadTag(t)),
    };
    if c.at != payload.len() {
        return Err(CodecError::TrailingBytes(payload.len() - c.at));
    }
    Ok(msg)
}

/// Reassembles frames from an arbitrarily-chopped byte stream.
///
/// Feed raw reads with [`FrameReader::extend`]; pull complete payloads
/// with [`FrameReader::next_payload`], which borrows from the internal
/// buffer (decode before the next `extend`). The buffer is compacted
/// opportunistically and retained across frames, so steady-state
/// operation allocates nothing once it has grown to the high-water mark.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix (compacted away once the buffer drains or grows).
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: if everything buffered has been
        // consumed, restart at the front so capacity is reused instead
        // of extended.
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Returns the next complete frame payload, `Ok(None)` when more
    /// bytes are needed, or [`CodecError::TooLarge`] when the length
    /// prefix exceeds [`MAX_FRAME`] (the connection should be dropped —
    /// the stream cannot be resynchronized).
    pub fn next_payload(&mut self) -> Result<Option<&[u8]>, CodecError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.start..self.start + 4]
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        if len > MAX_FRAME {
            return Err(CodecError::TooLarge(len));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start = at + len;
        Ok(Some(&self.buf[at..at + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_single() {
        let msg = WireMsg::Proto {
            from: ProcessId::from_raw(7),
            to: ProcessId::from_raw(1),
            msg: StoreMsg::Query {
                tag: OpTag { seq: 3, attempt: 2 },
                epoch: 9,
            },
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &msg);
        let mut r = FrameReader::new();
        r.extend(&buf);
        let payload = r.next_payload().unwrap().unwrap();
        assert_eq!(decode_frame(payload).unwrap(), msg);
        assert!(r.next_payload().unwrap().is_none());
    }

    #[test]
    fn split_frames_reassemble() {
        let msgs = [
            WireMsg::Hello {
                pid: ProcessId::from_raw(1),
                role: ROLE_REPLICA,
                addr: "uds:/tmp/x.sock".into(),
            },
            WireMsg::Proto {
                from: ProcessId::from_raw(1),
                to: ProcessId::from_raw(2),
                msg: StoreMsg::Announce,
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            encode_frame(&mut buf, m);
        }
        // Feed a byte at a time.
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for &b in &buf {
            r.extend(&[b]);
            while let Some(p) = r.next_payload().unwrap() {
                got.push(decode_frame(p).unwrap());
            }
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut r = FrameReader::new();
        r.extend(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(r.next_payload(), Err(CodecError::TooLarge(MAX_FRAME + 1)));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(&[200]).is_err());
        assert!(decode_frame(&[2, 1, 2, 3]).is_err());
        // Valid frame with trailing junk.
        let mut buf = Vec::new();
        encode_frame(
            &mut buf,
            &WireMsg::Proto {
                from: ProcessId::from_raw(0),
                to: ProcessId::from_raw(1),
                msg: StoreMsg::ViewReq,
            },
        );
        let mut payload = buf[4..].to_vec();
        payload.push(0xFF);
        assert!(matches!(
            decode_frame(&payload),
            Err(CodecError::TrailingBytes(1))
        ));
    }
}
