//! A calendar-queue timer wheel for the event loop.
//!
//! Same idiom as the simulator's calendar event queue: time is divided
//! into fixed-width slots and a timer is filed in the slot its deadline
//! falls into, modulo the wheel size. Expiry walks the slots between the
//! last-seen time and `now`, popping entries whose deadline has passed
//! and leaving later-lap entries in place. Operations are O(1) amortized
//! for the protocol's short timers (operation deadlines, probe ticks),
//! with slot `Vec`s retained across laps so the steady state allocates
//! nothing.
//!
//! Tokens are the sans-io core's [`TimerToken`]s; the wheel never
//! cancels — the core ignores stale tokens, matching the simulator's
//! one-shot kernel timers.

use dds_store::protocol::TimerToken;

/// Slot width in milliseconds. Protocol timers are tens to hundreds of
/// milliseconds, so 4 ms slots keep firing error well under the
/// protocol's own tolerances.
const SLOT_MS: u64 = 4;
/// Number of slots; one lap covers `SLOT_MS * SLOTS` = ~2 s. Longer
/// timers simply survive extra laps.
const SLOTS: usize = 512;

/// A fixed-size timer wheel of `(deadline_ms, token)` entries.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<(u64, TimerToken)>>,
    /// The time up to which slots have been drained.
    drained_ms: u64,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel starting at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            drained_ms: 0,
            len: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_of(deadline_ms: u64) -> usize {
        ((deadline_ms / SLOT_MS) % SLOTS as u64) as usize
    }

    /// Files `token` to fire once `deadline_ms` is reached. A deadline
    /// already in the past fires on the next [`TimerWheel::expire`].
    pub fn schedule(&mut self, deadline_ms: u64, token: TimerToken) {
        // A deadline before the drained watermark would land in a slot
        // the expiry cursor has already passed; clamp it forward so it
        // fires on the very next expire call.
        let deadline_ms = deadline_ms.max(self.drained_ms);
        self.slots[Self::slot_of(deadline_ms)].push((deadline_ms, token));
        self.len += 1;
    }

    /// Pops every timer with `deadline <= now_ms` into `out` (appended;
    /// not cleared), advancing the wheel's watermark to `now_ms`.
    pub fn expire(&mut self, now_ms: u64, out: &mut Vec<TimerToken>) {
        if now_ms < self.drained_ms {
            return; // non-monotone clock reading: nothing new can be due
        }
        if self.len == 0 {
            self.drained_ms = now_ms;
            return;
        }
        // Walk each slot between the watermark and now once. If the span
        // exceeds a full lap, every slot is visited exactly once.
        let first = self.drained_ms / SLOT_MS;
        let last = now_ms / SLOT_MS;
        let span = (last - first + 1).min(SLOTS as u64);
        for s in 0..span {
            let idx = ((first + s) % SLOTS as u64) as usize;
            let slot = &mut self.slots[idx];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].0 <= now_ms {
                    out.push(slot.swap_remove(i).1);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.drained_ms = self.drained_ms.max(now_ms);
    }

    /// Earliest pending deadline, or `None` when empty. O(slots) scan —
    /// the wheel is small and this runs once per loop iteration to
    /// derive the poll timeout.
    pub fn next_deadline(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.slots
            .iter()
            .flatten()
            .map(|&(d, _)| d)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(n: u64) -> TimerToken {
        TimerToken(n)
    }

    #[test]
    fn fires_in_deadline_windows() {
        let mut w = TimerWheel::new();
        w.schedule(10, tok(1));
        w.schedule(50, tok(2));
        w.schedule(5000, tok(3)); // multiple laps out
        assert_eq!(w.next_deadline(), Some(10));
        let mut fired = Vec::new();
        w.expire(9, &mut fired);
        assert!(fired.is_empty());
        w.expire(30, &mut fired);
        assert_eq!(fired, vec![tok(1)]);
        fired.clear();
        w.expire(4999, &mut fired);
        assert_eq!(fired, vec![tok(2)]);
        fired.clear();
        w.expire(5003, &mut fired);
        assert_eq!(fired, vec![tok(3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_slot_different_laps_do_not_cross_fire() {
        let mut w = TimerWheel::new();
        let lap = SLOT_MS * SLOTS as u64;
        w.schedule(8, tok(1));
        w.schedule(8 + lap, tok(2)); // same slot, one lap later
        let mut fired = Vec::new();
        w.expire(100, &mut fired);
        assert_eq!(fired, vec![tok(1)]);
        fired.clear();
        w.expire(8 + lap, &mut fired);
        assert_eq!(fired, vec![tok(2)]);
    }

    #[test]
    fn past_deadlines_fire_immediately_and_len_tracks() {
        let mut w = TimerWheel::new();
        let mut fired = Vec::new();
        w.expire(1000, &mut fired); // advance watermark with empty wheel
        w.schedule(3, tok(7)); // already past: clamped to watermark
        assert_eq!(w.len(), 1);
        w.expire(1000, &mut fired);
        assert_eq!(fired, vec![tok(7)]);
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_deadline(), None);
    }
}
