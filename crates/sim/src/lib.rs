//! # dds-sim — a deterministic simulator for dynamic distributed systems
//!
//! This crate is the execution substrate of the reproduction: a
//! discrete-event simulator in which processes join, leave, crash and
//! exchange messages over a churning knowledge graph.
//!
//! - [`world`] — the kernel ([`world::World`], [`world::WorldBuilder`]):
//!   event loop, process table, topology maintenance, trace recording;
//! - [`actor`] — the protocol programming model ([`actor::Actor`],
//!   [`actor::Context`]);
//! - [`driver`] — churn drivers realizing each arrival model, including the
//!   adversaries used in the impossibility experiments;
//! - [`corrupt`] — the transient-corruption adversary of the
//!   self-stabilization fault model;
//! - [`delay`] — message delay/loss models realizing the timing dimension;
//! - [`event`] — the deterministic event queue;
//! - [`metrics`] — run counters;
//! - [`parallel`] — cross-seed parallel sweep execution (`DDS_THREADS`);
//! - [`slots`] — dense identity-indexed kernel tables;
//! - [`snapshot`] — stable state fingerprints for snapshot-forking
//!   exploration.
//!
//! Determinism contract: a run is a pure function of the builder
//! configuration and the seed. No wall clock, no OS randomness, no hash
//! iteration order anywhere in the kernel.
//!
//! ## Example
//!
//! ```
//! use dds_core::process::ProcessId;
//! use dds_core::time::Time;
//! use dds_net::generate;
//! use dds_sim::actor::{Actor, Context};
//! use dds_sim::world::WorldBuilder;
//!
//! // A process that greets every neighbor once, at start-up.
//! struct Hello;
//! impl Actor<&'static str> for Hello {
//!     fn on_start(&mut self, ctx: &mut Context<'_, &'static str>) {
//!         ctx.broadcast("hello");
//!     }
//!     fn on_message(&mut self, _: &mut Context<'_, &'static str>, _: ProcessId, _: &'static str) {}
//! }
//!
//! let mut world = WorldBuilder::new(1)
//!     .initial_graph(generate::ring(6))
//!     .spawn(|_| Box::new(Hello))
//!     .build();
//! world.run_until(Time::from_ticks(10));
//! assert_eq!(world.metrics().sends, 12); // 6 nodes x 2 neighbors
//! assert_eq!(world.metrics().delivers, 12);
//! ```

#![warn(missing_docs)]

pub mod actor;
pub mod corrupt;
pub mod delay;
pub mod driver;
pub mod event;
pub mod metrics;
pub mod parallel;
pub mod partition;
pub mod slots;
pub mod snapshot;
pub mod world;

pub use actor::{Actor, Context};
pub use world::{World, WorldBuilder};
