//! The actor runtime: how protocol code runs inside the simulated world.
//!
//! A protocol process is an [`Actor`]: a state machine driven by callbacks
//! (`on_start`, `on_message`, `on_timer`, neighbor notifications). Inside a
//! callback the actor interacts with the world only through its
//! [`Context`] — sending messages, setting timers, leaving — which buffers
//! the effects; the kernel applies them after the callback returns. That
//! buffering is what keeps the kernel borrow-safe and the dispatch order
//! deterministic.

use std::any::Any;

use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::{Time, TimeDelta};

use crate::event::TimerId;
use crate::snapshot::StableHasher;

/// A protocol process.
///
/// Implementations must also be `Any` (automatic for `'static` types) so
/// the harness can inspect actor state after a run via
/// [`crate::world::World::actor`].
pub trait Actor<M>: Any {
    /// Called once, right after the process joins the system.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M);

    /// Called when a timer set through [`Context::set_timer`] expires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: TimerId) {
        let _ = (ctx, timer);
    }

    /// Called when a new neighbor appears in the knowledge graph.
    fn on_neighbor_up(&mut self, ctx: &mut Context<'_, M>, peer: ProcessId) {
        let _ = (ctx, peer);
    }

    /// Called when a new neighbor appears *because the repair rule bridged
    /// around a departure*: `peer` is the new neighbor, `replaced` the
    /// departed process the edge routes around. Delivered before the
    /// corresponding [`Actor::on_neighbor_down`] for `replaced`, so a
    /// protocol waiting on `replaced` can redirect to `peer` first.
    ///
    /// The default delegates to [`Actor::on_neighbor_up`] — protocols that
    /// do not care about the distinction see every new edge uniformly.
    fn on_neighbor_bridge(&mut self, ctx: &mut Context<'_, M>, peer: ProcessId, replaced: ProcessId) {
        let _ = replaced;
        self.on_neighbor_up(ctx, peer);
    }

    /// Called when a neighbor departs (leave or crash — indistinguishable
    /// to the survivor, as in the paper's model).
    fn on_neighbor_down(&mut self, ctx: &mut Context<'_, M>, peer: ProcessId) {
        let _ = (ctx, peer);
    }

    /// Deep-copies this actor for a forked world snapshot, or `None` when
    /// the actor does not support forking (the default).
    ///
    /// Opting in (usually `Some(Box::new(self.clone()))`) lets the
    /// explorer fork a world at a choice point instead of replaying the
    /// decision prefix from scratch. The copy must be *complete*: any
    /// state shared with the original would leak schedule decisions
    /// between exploration branches.
    fn fork(&self) -> Option<Box<dyn Actor<M>>> {
        None
    }

    /// Absorbs this actor's state into a world fingerprint, returning
    /// `true` when supported. The default (`false`) disables state
    /// deduplication for worlds containing this actor — forking still
    /// works, duplicate states are just re-explored.
    ///
    /// Implementations must hash every field that can influence future
    /// behavior; omitting one can identify divergent states and silently
    /// prune reachable schedules.
    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        let _ = h;
        false
    }

    /// Overwrites this actor's state with arbitrary (adversarially random)
    /// values drawn from `rng`, returning `true` when supported. The
    /// default (`false`) leaves the actor untouched — the transient-
    /// corruption adversary ([`crate::corrupt::CorruptionAdversary`]) then
    /// skips it and the kernel records no corruption event.
    ///
    /// This is the self-stabilization fault model: every reachable *and
    /// unreachable* local state is a legal post-corruption configuration,
    /// so implementations should randomize each mutable field from `rng`
    /// (drawing in a fixed field order keeps runs byte-reproducible).
    /// Immutable wiring (identities, configuration constants) should be
    /// left alone — corruption hits volatile state, not code.
    fn corrupt(&mut self, rng: &mut Rng) -> bool {
        let _ = rng;
        false
    }
}

/// A buffered effect produced by an actor callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Effect<M> {
    Send { to: ProcessId, msg: M },
    SetTimer { id: TimerId, delay: TimeDelta },
    Leave,
}

/// The actor's window onto the world during one callback.
///
/// The effect buffer is borrowed from the kernel and reused across
/// callbacks, so a steady-state run allocates nothing per dispatched
/// event.
#[derive(Debug)]
pub struct Context<'a, M> {
    pid: ProcessId,
    now: Time,
    value: f64,
    neighbors: &'a [ProcessId],
    rng: &'a mut Rng,
    next_timer: &'a mut u64,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        pid: ProcessId,
        now: Time,
        value: f64,
        neighbors: &'a [ProcessId],
        rng: &'a mut Rng,
        next_timer: &'a mut u64,
        effects: &'a mut Vec<Effect<M>>,
    ) -> Self {
        Context {
            pid,
            now,
            value,
            neighbors,
            rng,
            next_timer,
            effects,
        }
    }

    /// This process's identity.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The local value this process contributes to aggregations.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The current neighbors in the knowledge graph (a snapshot taken when
    /// the callback began). This is *all* a process may know about the
    /// membership under neighborhood knowledge.
    pub fn neighbors(&self) -> &[ProcessId] {
        self.neighbors
    }

    /// Deterministic per-run randomness for protocol decisions.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Picks a uniformly random current neighbor (one RNG draw), or `None`
    /// when isolated. Use this instead of `rng().choose(neighbors())` — the
    /// disjoint field borrows are legal here but not through the two
    /// accessor calls, which forced callers to copy the neighbor slice.
    pub fn choose_neighbor(&mut self) -> Option<ProcessId> {
        self.rng.choose(self.neighbors).copied()
    }

    /// Sends `msg` to `to`. Delivery time is sampled from the scenario's
    /// delay model; the message is silently dropped if `to` departs first.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends a clone of `msg` to every current neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for &n in self.neighbors {
            self.effects.push(Effect::Send { to: n, msg: msg.clone() });
        }
    }

    /// Sets a one-shot timer; [`Actor::on_timer`] fires after `delay`
    /// (rounded up to at least one tick).
    pub fn set_timer(&mut self, delay: TimeDelta) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer {
            id,
            delay: TimeDelta::ticks(delay.as_ticks().max(1)),
        });
        id
    }

    /// Leaves the system gracefully at the end of this callback.
    pub fn leave(&mut self) {
        self.effects.push(Effect::Leave);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_effects_in_order() {
        let mut rng = Rng::seeded(0);
        let mut next_timer = 0;
        let mut effects = Vec::new();
        let neighbors = [ProcessId::from_raw(1), ProcessId::from_raw(2)];
        let mut ctx: Context<'_, &str> = Context::new(
            ProcessId::from_raw(0),
            Time::from_ticks(5),
            3.5,
            &neighbors,
            &mut rng,
            &mut next_timer,
            &mut effects,
        );
        assert_eq!(ctx.pid(), ProcessId::from_raw(0));
        assert_eq!(ctx.now(), Time::from_ticks(5));
        assert_eq!(ctx.value(), 3.5);
        assert_eq!(ctx.neighbors().len(), 2);

        ctx.send(ProcessId::from_raw(1), "hello");
        let id = ctx.set_timer(TimeDelta::ticks(4));
        ctx.leave();
        assert_eq!(id, TimerId(0));
        assert_eq!(ctx.effects.len(), 3);
        assert!(matches!(ctx.effects[0], Effect::Send { .. }));
        assert!(matches!(
            ctx.effects[1],
            Effect::SetTimer {
                id: TimerId(0),
                delay
            } if delay == TimeDelta::ticks(4)
        ));
        assert!(matches!(ctx.effects[2], Effect::Leave));
    }

    #[test]
    fn broadcast_sends_to_each_neighbor() {
        let mut rng = Rng::seeded(0);
        let mut next_timer = 0;
        let mut effects = Vec::new();
        let neighbors = [ProcessId::from_raw(1), ProcessId::from_raw(2)];
        let mut ctx: Context<'_, u8> = Context::new(
            ProcessId::from_raw(0),
            Time::ZERO,
            0.0,
            &neighbors,
            &mut rng,
            &mut next_timer,
            &mut effects,
        );
        ctx.broadcast(9);
        assert_eq!(ctx.effects.len(), 2);
    }

    #[test]
    fn zero_delay_timer_rounds_up() {
        let mut rng = Rng::seeded(0);
        let mut next_timer = 7;
        let mut effects = Vec::new();
        let mut ctx: Context<'_, u8> = Context::new(
            ProcessId::from_raw(0),
            Time::ZERO,
            0.0,
            &[],
            &mut rng,
            &mut next_timer,
            &mut effects,
        );
        let id = ctx.set_timer(TimeDelta::ZERO);
        assert_eq!(id, TimerId(7));
        assert!(matches!(
            ctx.effects[0],
            Effect::SetTimer { delay, .. } if delay == TimeDelta::TICK
        ));
        assert_eq!(next_timer, 8);
    }
}
