//! Message delay and loss models: the timing dimension made operational.
//!
//! A [`DelayModel`] samples the latency of each message; the choice
//! realizes the [`dds_core::timing::Timing`] assumption of the scenario's
//! system class. A [`LossModel`] decides whether the network drops the
//! message outright (beyond the implicit drop when the destination departs
//! before delivery).

use std::fmt;

use dds_core::rng::Rng;
use dds_core::time::TimeDelta;

/// How long a message spends in the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly `delta` ticks — the synchronous model
    /// with a tight bound.
    Fixed(TimeDelta),
    /// Uniform in `[min, max]` ticks — synchronous with bound `max`.
    Uniform {
        /// Minimum delay (at least 1 tick: delivery is never instantaneous).
        min: TimeDelta,
        /// Maximum delay.
        max: TimeDelta,
    },
    /// Exponential with the given mean (rounded up, at least 1 tick),
    /// unbounded above — the asynchronous model: any finite bound is
    /// eventually exceeded.
    Exponential {
        /// Mean delay in ticks.
        mean_ticks: f64,
    },
}

impl DelayModel {
    /// Samples one message delay.
    ///
    /// Always at least one tick: a message is never delivered at its send
    /// instant.
    pub fn sample(&self, rng: &mut Rng) -> TimeDelta {
        match self {
            DelayModel::Fixed(d) => TimeDelta::ticks(d.as_ticks().max(1)),
            DelayModel::Uniform { min, max } => {
                let lo = min.as_ticks().max(1);
                let hi = max.as_ticks().max(lo);
                TimeDelta::ticks(lo + rng.below(hi - lo + 1))
            }
            DelayModel::Exponential { mean_ticks } => {
                let d = rng.exponential(*mean_ticks).ceil() as u64;
                TimeDelta::ticks(d.max(1))
            }
        }
    }

    /// The worst-case delay when one exists (i.e. in the synchronous
    /// models), used by protocols to compute timeouts.
    pub fn bound(&self) -> Option<TimeDelta> {
        match self {
            DelayModel::Fixed(d) => Some(TimeDelta::ticks(d.as_ticks().max(1))),
            DelayModel::Uniform { max, .. } => Some(*max),
            DelayModel::Exponential { .. } => None,
        }
    }
}

impl fmt::Display for DelayModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayModel::Fixed(d) => write!(f, "fixed delay {d}"),
            DelayModel::Uniform { min, max } => {
                write!(f, "uniform delay [{}, {}]", min.as_ticks(), max.as_ticks())
            }
            DelayModel::Exponential { mean_ticks } => {
                write!(f, "exponential delay (mean {mean_ticks} ticks, unbounded)")
            }
        }
    }
}

/// Whether the network loses messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Reliable links.
    None,
    /// Each message is lost independently with probability `p`.
    Bernoulli(f64),
}

impl LossModel {
    /// `true` when this particular message should be dropped.
    pub fn drops(&self, rng: &mut Rng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(*p),
        }
    }
}

impl fmt::Display for LossModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossModel::None => write!(f, "reliable links"),
            LossModel::Bernoulli(p) => write!(f, "loss probability {p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant_and_at_least_one() {
        let mut rng = Rng::seeded(0);
        let m = DelayModel::Fixed(TimeDelta::ticks(3));
        for _ in 0..20 {
            assert_eq!(m.sample(&mut rng), TimeDelta::ticks(3));
        }
        let zero = DelayModel::Fixed(TimeDelta::ZERO);
        assert_eq!(zero.sample(&mut rng), TimeDelta::TICK);
        assert_eq!(zero.bound(), Some(TimeDelta::TICK));
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = Rng::seeded(1);
        let m = DelayModel::Uniform {
            min: TimeDelta::ticks(2),
            max: TimeDelta::ticks(5),
        };
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let d = m.sample(&mut rng).as_ticks();
            assert!((2..=5).contains(&d));
            seen.insert(d);
        }
        assert_eq!(seen.len(), 4, "all values in range should occur");
        assert_eq!(m.bound(), Some(TimeDelta::ticks(5)));
    }

    #[test]
    fn exponential_has_no_bound_and_roughly_right_mean() {
        let mut rng = Rng::seeded(2);
        let m = DelayModel::Exponential { mean_ticks: 8.0 };
        assert_eq!(m.bound(), None);
        let n = 5000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng).as_ticks()).sum();
        let mean = sum as f64 / n as f64;
        // ceil() biases upward by ~0.5.
        assert!((mean - 8.5).abs() < 0.6, "mean {mean}");
    }

    #[test]
    fn loss_models() {
        let mut rng = Rng::seeded(3);
        assert!(!(0..100).any(|_| LossModel::None.drops(&mut rng)));
        assert!((0..100).all(|_| LossModel::Bernoulli(1.0).drops(&mut rng)));
        let hits = (0..10_000)
            .filter(|_| LossModel::Bernoulli(0.2).drops(&mut rng))
            .count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.2).abs() < 0.03, "freq {freq}");
    }
}
