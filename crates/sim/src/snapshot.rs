//! Stable state fingerprints for snapshot-forking exploration.
//!
//! The forking explorer deduplicates world states by a 64-bit
//! fingerprint. The hash must be *stable* (independent of process,
//! platform, and allocation layout — `std::hash` guarantees none of
//! these) and *conservative*: two states may only share a fingerprint if
//! every future behavior from them is identical. We therefore hash the
//! complete deterministic closure of a world — actor state, pending
//! events (including their sequence numbers, which break scheduling
//! ties), membership, topology, values, identity allocator, and the RNG
//! stream position. A collision across genuinely different states is
//! possible (64-bit truncation) but astronomically unlikely at the
//! state counts bounded exploration reaches.
//!
//! [`StableHasher`] is FNV-1a over little-endian bytes: trivially
//! portable and byte-order explicit. [`FingerprintMsg`] is the opt-in
//! hook a message type implements so worlds carrying it can be
//! fingerprinted; actors and churn drivers opt in through
//! [`crate::actor::Actor::fingerprint`] and
//! [`crate::driver::ChurnDriver::fingerprint`].

/// A deterministic, platform-stable 64-bit hasher (FNV-1a).
///
/// Unlike [`std::hash::Hasher`] implementations, the digest depends only
/// on the byte sequence written — never on pointer values, random keys,
/// or platform word order — so it is safe to compare across runs,
/// threads, and processes.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A hasher in its initial state.
    pub const fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize`, widened to 64 bits so 32- and 64-bit platforms
    /// agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Absorbs a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything written so far.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// A message type that knows how to absorb itself into a fingerprint.
///
/// Required for a `World<M>` to be fingerprintable: pending events carry
/// message payloads, and two states whose in-flight payloads differ must
/// not be identified. Implementations must write every field that can
/// influence a receiving actor.
pub trait FingerprintMsg {
    /// Absorbs this message into `h`. Enum implementations should write a
    /// variant discriminant first so payload bytes cannot alias across
    /// variants.
    fn fingerprint(&self, h: &mut StableHasher);
}

impl FingerprintMsg for u64 {
    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u64(*self);
    }
}

impl FingerprintMsg for u32 {
    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_u32(*self);
    }
}

impl FingerprintMsg for &'static str {
    fn fingerprint(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

/// Adapter from the trait method to the `fn`-pointer form the kernel
/// stores (a trait object over `M` cannot be named inside `World<M>`
/// without infecting every signature; a function pointer can).
pub fn fingerprint_msg<M: FingerprintMsg>(msg: &M, h: &mut StableHasher) {
    msg.fingerprint(h);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_hasher_instances() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        a.write_u64(42);
        a.write_str("hello");
        b.write_u64(42);
        b.write_str("hello");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis; of "a" it is the
        // published test vector.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_order_and_width_matter() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_u32(7);
        let mut d = StableHasher::new();
        d.write_u64(7);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
