//! The event queue: a deterministic priority queue of scheduled events.
//!
//! Determinism requires total order: events at equal instants are ordered
//! by their scheduling sequence number, so a run never depends on hash
//! ordering or allocation addresses (DESIGN.md §7).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use dds_core::process::ProcessId;
use dds_core::time::Time;

/// Identifier of a pending timer, unique within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// An event awaiting dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message arriving at `to`.
    Deliver {
        /// Original sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// When the message was handed to the network — lets the kernel
        /// report in-flight latency to observability sinks at delivery.
        sent: Time,
        /// Payload.
        msg: M,
    },
    /// A timer set by `pid` expiring.
    Timer {
        /// The process that set the timer.
        pid: ProcessId,
        /// Which timer.
        timer: TimerId,
    },
    /// A churn-driver wake-up.
    ChurnTick,
}

/// An event with its dispatch instant and tie-breaking sequence number.
#[derive(Debug, Clone)]
struct Scheduled<M> {
    at: Time,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` for dispatch at `at`.
    pub fn schedule(&mut self, at: Time, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event (FIFO among equal instants).
    pub fn pop(&mut self) -> Option<(Time, Event<M>)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The instant of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(t(5), Event::ChurnTick);
        q.schedule(t(2), Event::ChurnTick);
        q.schedule(t(9), Event::ChurnTick);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(at, _)| at.as_ticks())
            .collect();
        assert_eq!(times, vec![2, 5, 9]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(
                t(3),
                Event::Deliver {
                    from: ProcessId::from_raw(0),
                    to: ProcessId::from_raw(0),
                    sent: t(3),
                    msg: i,
                },
            );
        }
        let msgs: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(msgs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(7), Event::ChurnTick);
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(t(4), Event::ChurnTick);
        q.schedule(t(1), Event::ChurnTick);
        assert_eq!(q.pop().unwrap().0, t(1));
        q.schedule(t(2), Event::ChurnTick);
        assert_eq!(q.pop().unwrap().0, t(2));
        assert_eq!(q.pop().unwrap().0, t(4));
        assert!(q.pop().is_none());
    }
}
