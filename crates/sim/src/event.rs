//! The event queue: a deterministic priority queue of scheduled events.
//!
//! Determinism requires total order: events at equal instants are ordered
//! by their scheduling sequence number, so a run never depends on hash
//! ordering or allocation addresses (DESIGN.md §7).
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * **Calendar** (the default): a two-tier bucket queue. A ring of
//!   [`RING_SIZE`] per-tick FIFO buckets covers the near future — the
//!   dominant traffic, since delays and timer periods are a handful of
//!   ticks — giving O(1) schedule and pop. Events beyond the ring land in
//!   an overflow binary heap and migrate into buckets as the ring slides
//!   forward.
//! * **Heap**: the classical `BinaryHeap<(time, seq)>`, kept for A/B
//!   comparison behind the `DDS_QUEUE=heap` environment switch.
//!
//! Both pop the exact same `(time, seq, event)` sequence for any schedule
//! (pinned by the `queue_equivalence` property test), so the switch changes
//! wall-clock only, never results.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::Time;

use crate::snapshot::StableHasher;

/// Identifier of a pending timer, unique within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The raw counter value — stable within a run, so actors can absorb
    /// stored timer ids into state fingerprints.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// An event awaiting dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message arriving at `to`.
    Deliver {
        /// Original sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// When the message was handed to the network — lets the kernel
        /// report in-flight latency to observability sinks at delivery.
        sent: Time,
        /// Causal annotation: the id of the send event that put this
        /// message in flight (`0` = injected by the environment). Purely
        /// observational — excluded from fingerprints, never branches
        /// dispatch.
        cause: u64,
        /// Payload.
        msg: M,
    },
    /// A timer set by `pid` expiring.
    Timer {
        /// The process that set the timer.
        pid: ProcessId,
        /// Which timer.
        timer: TimerId,
        /// Causal annotation: the id of the event whose callback set the
        /// timer (`0` = set outside any dispatch). Observational only.
        cause: u64,
    },
    /// A churn-driver wake-up.
    ChurnTick,
}

impl<M> Event<M> {
    /// The payload-free summary of this event used by [`SchedulePolicy`].
    fn ready_kind(&self) -> ReadyKind {
        match self {
            Event::Deliver { from, to, .. } => ReadyKind::Deliver { from: *from, to: *to },
            Event::Timer { pid, .. } => ReadyKind::Timer { pid: *pid },
            Event::ChurnTick => ReadyKind::ChurnTick,
        }
    }
}

/// Payload-free classification of a ready event, enough for a
/// [`SchedulePolicy`] to reason about commutativity (which process the
/// dispatch will touch) without seeing the message itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyKind {
    /// A message delivery.
    Deliver {
        /// Original sender.
        from: ProcessId,
        /// Destination (the actor the dispatch mutates).
        to: ProcessId,
    },
    /// A timer expiry at `pid`.
    Timer {
        /// The timer's owner (the actor the dispatch mutates).
        pid: ProcessId,
    },
    /// A churn-driver wake-up (may mutate membership and topology).
    ChurnTick,
}

impl ReadyKind {
    /// The process the dispatch will run at, when the event is local to
    /// one process (`None` for [`ReadyKind::ChurnTick`], which may touch
    /// anything).
    pub fn target(&self) -> Option<ProcessId> {
        match self {
            ReadyKind::Deliver { to, .. } => Some(*to),
            ReadyKind::Timer { pid } => Some(*pid),
            ReadyKind::ChurnTick => None,
        }
    }
}

/// One entry of the ready set: an event dispatchable at the earliest
/// pending instant. `seq` is the queue's tie-breaking sequence number —
/// stable across replays of the same prefix, which is what lets schedule
/// explorers identify "the same event" across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadySummary {
    /// Scheduling sequence number (the default dispatch order).
    pub seq: u64,
    /// What dispatching the event will do.
    pub kind: ReadyKind,
}

/// A pluggable tie-breaker over same-instant events — the controlled
/// nondeterminism hook of the kernel.
///
/// The default (no policy installed) dispatches ready events in `(time,
/// seq)` order; a policy sees the full ready set (every event pending at
/// the earliest instant, in seq order) and returns the index to dispatch
/// next. Index 0 reproduces the default order, so a policy that always
/// answers 0 changes nothing. The policy is only consulted when the ready
/// set holds more than one event — a genuine scheduling choice.
///
/// `epoch` is the world's mutation epoch: it increments whenever
/// membership or topology changes, letting explorers conservatively
/// invalidate commutativity assumptions across such boundaries.
pub trait SchedulePolicy {
    /// Picks which of `ready` (length ≥ 2, seq order) to dispatch next.
    /// Out-of-range answers are clamped to the last index.
    fn choose(&mut self, now: Time, epoch: u64, ready: &[ReadySummary]) -> usize;

    /// Called instead of [`SchedulePolicy::choose`] when exactly one event
    /// is ready — no choice exists, but explorers that track commutativity
    /// (sleep sets) need to see *every* dispatched event, not just the
    /// branching ones, to wake sleeping events a forced step conflicts
    /// with. The default does nothing.
    fn observe(&mut self, now: Time, epoch: u64, only: &ReadySummary) {
        let _ = (now, epoch, only);
    }
}

impl<M> Event<M> {
    /// Absorbs this event into a fingerprint hasher: a discriminant, the
    /// routing fields, and the payload via `msg_fp`. The `cause`
    /// annotation is deliberately excluded: it never influences dispatch,
    /// so states differing only in causal bookkeeping stay mergeable
    /// under exploration dedup.
    fn fingerprint(&self, h: &mut StableHasher, msg_fp: fn(&M, &mut StableHasher)) {
        match self {
            Event::Deliver { from, to, sent, msg, .. } => {
                h.write_u8(0);
                h.write_u64(from.as_raw());
                h.write_u64(to.as_raw());
                h.write_u64(sent.as_ticks());
                msg_fp(msg, h);
            }
            Event::Timer { pid, timer, .. } => {
                h.write_u8(1);
                h.write_u64(pid.as_raw());
                h.write_u64(timer.0);
            }
            Event::ChurnTick => h.write_u8(2),
        }
    }
}

/// An event with its dispatch instant and tie-breaking sequence number.
#[derive(Debug, Clone)]
struct Scheduled<M> {
    at: Time,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Scheduled<M> {}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Number of per-tick buckets in the calendar ring. Delays, timer periods
/// and churn windows in every experiment are well under this; only
/// deliberately far-future schedules (long deadlines, generous timeouts)
/// touch the overflow heap.
const RING_SIZE: u64 = 128;

/// The calendar tier: a sliding window of per-tick FIFO buckets plus an
/// overflow heap for events beyond the window.
///
/// Invariants:
/// * `cursor` never decreases; every event in bucket `t % RING_SIZE` has
///   tick `t` with `cursor <= t < cursor + RING_SIZE`.
/// * the overflow heap only holds events with tick `>= cursor + RING_SIZE`;
///   whenever `cursor` advances, newly covered events migrate into their
///   buckets (in `(time, seq)` order, so bucket FIFO order equals seq
///   order — migrated events were necessarily scheduled before any event
///   scheduled directly into the same bucket).
#[derive(Clone)]
struct Calendar<M> {
    buckets: Vec<VecDeque<(u64, Event<M>)>>,
    /// The earliest tick the ring can currently hold.
    cursor: u64,
    /// Events held in the ring (the rest are in `overflow`).
    ring_len: usize,
    overflow: BinaryHeap<Scheduled<M>>,
}

impl<M> Calendar<M> {
    fn new() -> Self {
        Calendar {
            buckets: (0..RING_SIZE).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn bucket_index(tick: u64) -> usize {
        (tick % RING_SIZE) as usize
    }

    fn schedule(&mut self, at: Time, seq: u64, event: Event<M>) {
        // The kernel never schedules into the past (`World::inject`
        // asserts it); clamping keeps the bucket mapping safe regardless.
        let tick = at.as_ticks().max(self.cursor);
        if tick < self.cursor + RING_SIZE {
            self.buckets[Self::bucket_index(tick)].push_back((seq, event));
            self.ring_len += 1;
        } else {
            self.overflow.push(Scheduled { at, seq, event });
        }
    }

    /// Slides the window start to `tick` and pulls every overflow event the
    /// wider window now covers into its bucket.
    fn advance_to(&mut self, tick: u64) {
        debug_assert!(tick >= self.cursor);
        self.cursor = tick;
        let end = self.cursor + RING_SIZE;
        while self
            .overflow
            .peek()
            .is_some_and(|s| s.at.as_ticks() < end)
        {
            let s = self.overflow.pop().expect("peeked");
            self.buckets[Self::bucket_index(s.at.as_ticks())].push_back((s.seq, s.event));
            self.ring_len += 1;
        }
    }

    /// The tick of the earliest pending event, scanning the ring from the
    /// cursor (the overflow heap cannot beat a ring event by invariant).
    fn next_tick(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|s| s.at.as_ticks());
        }
        (self.cursor..self.cursor + RING_SIZE)
            .find(|&t| !self.buckets[Self::bucket_index(t)].is_empty())
    }

    /// Advances the window so the earliest pending events sit in their
    /// bucket, returning their tick. `None` when the queue is empty.
    fn settle_front(&mut self) -> Option<u64> {
        if self.ring_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            // Ring empty: jump straight to the earliest overflow tick.
            let tick = self.overflow.peek().expect("nonempty").at.as_ticks();
            self.advance_to(tick);
        }
        let tick = self
            .next_tick()
            .expect("ring_len > 0 guarantees an occupied bucket");
        if tick > self.cursor {
            self.advance_to(tick);
        }
        Some(tick)
    }

    fn pop(&mut self) -> Option<(Time, Event<M>)> {
        let tick = self.settle_front()?;
        let (_, event) = self.buckets[Self::bucket_index(tick)]
            .pop_front()
            .expect("settle_front found this bucket occupied");
        self.ring_len -= 1;
        Some((Time::from_ticks(tick), event))
    }

    /// Removes the `n`-th event (seq order) of the earliest instant.
    fn pop_nth(&mut self, n: usize) -> Option<(Time, Event<M>)> {
        let tick = self.settle_front()?;
        let (_, event) = self.buckets[Self::bucket_index(tick)].remove(n)?;
        self.ring_len -= 1;
        Some((Time::from_ticks(tick), event))
    }

    /// Fills `out` with summaries of every event at the earliest instant,
    /// in seq order (bucket FIFO order equals seq order by invariant).
    fn ready_set(&mut self, out: &mut Vec<ReadySummary>) -> Option<Time> {
        out.clear();
        let tick = self.settle_front()?;
        out.extend(
            self.buckets[Self::bucket_index(tick)]
                .iter()
                .map(|(seq, event)| ReadySummary { seq: *seq, kind: event.ready_kind() }),
        );
        Some(Time::from_ticks(tick))
    }

    fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Visits every pending event (ring then overflow, no particular
    /// order) as `(at, seq, event)`. Ring entries store only their seq —
    /// the dispatch tick is implied by bucket position, so it is
    /// reconstructed from the bucket index relative to the cursor.
    fn for_each(&self, f: &mut dyn FnMut(Time, u64, &Event<M>)) {
        let base = Self::bucket_index(self.cursor) as u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let tick = self.cursor + (i as u64 + RING_SIZE - base) % RING_SIZE;
            for (seq, event) in bucket {
                f(Time::from_ticks(tick), *seq, event);
            }
        }
        for s in &self.overflow {
            f(s.at, s.seq, &s.event);
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.cursor = 0;
        self.ring_len = 0;
        self.overflow.clear();
    }

    /// Removes every pending event as [`Scheduled`] triples, keeping the
    /// cursor (and bucket allocations) where they are. Re-inserting the
    /// drained events via [`Calendar::schedule`] in `(time, seq)` order
    /// restores the bucket-FIFO-equals-seq invariant exactly.
    fn drain_all(&mut self) -> Vec<Scheduled<M>> {
        let mut out = Vec::with_capacity(self.len());
        let base = Self::bucket_index(self.cursor) as u64;
        for i in 0..self.buckets.len() {
            let tick = self.cursor + (i as u64 + RING_SIZE - base) % RING_SIZE;
            for (seq, event) in self.buckets[i].drain(..) {
                out.push(Scheduled { at: Time::from_ticks(tick), seq, event });
            }
        }
        self.ring_len = 0;
        out.extend(std::mem::take(&mut self.overflow).into_vec());
        out
    }
}

/// Which backing store an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Two-tier calendar/bucket queue (the default).
    Calendar,
    /// Legacy binary heap (`DDS_QUEUE=heap`).
    Heap,
}

impl QueueKind {
    /// Stable lowercase label (`"calendar"` / `"heap"`), used in bench
    /// reports.
    pub const fn label(self) -> &'static str {
        match self {
            QueueKind::Calendar => "calendar",
            QueueKind::Heap => "heap",
        }
    }
}

/// The queue implementation selected by the `DDS_QUEUE` environment
/// variable: `heap` picks the legacy binary heap, anything else (including
/// unset) the calendar queue.
pub fn configured_queue_kind() -> QueueKind {
    match std::env::var("DDS_QUEUE") {
        Ok(v) if v.eq_ignore_ascii_case("heap") => QueueKind::Heap,
        _ => QueueKind::Calendar,
    }
}

#[derive(Clone)]
enum Tier<M> {
    Calendar(Calendar<M>),
    Heap(BinaryHeap<Scheduled<M>>),
}

/// The deterministic event queue.
#[derive(Clone)]
pub struct EventQueue<M> {
    tier: Tier<M>,
    next_seq: u64,
}

impl<M> fmt::Debug for EventQueue<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind())
            .field("len", &self.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue of the [`configured_queue_kind`].
    pub fn new() -> Self {
        match configured_queue_kind() {
            QueueKind::Calendar => Self::calendar(),
            QueueKind::Heap => Self::heap(),
        }
    }

    /// Creates an empty calendar queue (ignoring `DDS_QUEUE`).
    pub fn calendar() -> Self {
        EventQueue {
            tier: Tier::Calendar(Calendar::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty legacy heap queue (ignoring `DDS_QUEUE`).
    pub fn heap() -> Self {
        EventQueue {
            tier: Tier::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Which backing store this queue uses.
    pub fn kind(&self) -> QueueKind {
        match self.tier {
            Tier::Calendar(_) => QueueKind::Calendar,
            Tier::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedules `event` for dispatch at `at`.
    pub fn schedule(&mut self, at: Time, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.tier {
            Tier::Calendar(c) => c.schedule(at, seq, event),
            Tier::Heap(h) => h.push(Scheduled { at, seq, event }),
        }
    }

    /// Removes and returns the earliest event (FIFO among equal instants).
    pub fn pop(&mut self) -> Option<(Time, Event<M>)> {
        match &mut self.tier {
            Tier::Calendar(c) => c.pop(),
            Tier::Heap(h) => h.pop().map(|s| (s.at, s.event)),
        }
    }

    /// Removes and returns the `n`-th event (seq order) among those
    /// pending at the earliest instant — the controlled-nondeterminism
    /// variant of [`EventQueue::pop`]. `pop_nth(0)` is exactly `pop`;
    /// `None` if the queue is empty or `n` is out of the ready set.
    pub fn pop_nth(&mut self, n: usize) -> Option<(Time, Event<M>)> {
        match &mut self.tier {
            Tier::Calendar(c) => c.pop_nth(n),
            Tier::Heap(h) => {
                let at = h.peek()?.at;
                // Pop the whole earliest-instant cohort (comes out in seq
                // order), keep the n-th, push the rest back.
                let mut cohort: Vec<Scheduled<M>> = Vec::new();
                while h.peek().is_some_and(|s| s.at == at) {
                    cohort.push(h.pop().expect("peeked"));
                }
                if n >= cohort.len() {
                    h.extend(cohort);
                    return None;
                }
                let picked = cohort.swap_remove(n);
                h.extend(cohort);
                Some((picked.at, picked.event))
            }
        }
    }

    /// Fills `out` with a summary of every event pending at the earliest
    /// instant, in seq order (the order [`EventQueue::pop`] would drain
    /// them), returning that instant. Clears `out` and returns `None` on
    /// an empty queue. Both tiers produce identical ready sets.
    pub fn ready_set(&mut self, out: &mut Vec<ReadySummary>) -> Option<Time> {
        match &mut self.tier {
            Tier::Calendar(c) => c.ready_set(out),
            Tier::Heap(h) => {
                out.clear();
                let at = h.peek()?.at;
                let mut cohort: Vec<Scheduled<M>> = Vec::new();
                while h.peek().is_some_and(|s| s.at == at) {
                    cohort.push(h.pop().expect("peeked"));
                }
                out.extend(
                    cohort
                        .iter()
                        .map(|s| ReadySummary { seq: s.seq, kind: s.event.ready_kind() }),
                );
                h.extend(cohort);
                Some(at)
            }
        }
    }

    /// The instant of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.tier {
            Tier::Calendar(c) => c.next_tick().map(Time::from_ticks),
            Tier::Heap(h) => h.peek().map(|s| s.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.tier {
            Tier::Calendar(c) => c.len(),
            Tier::Heap(h) => h.len(),
        }
    }

    /// `true` when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence number the next scheduled event will receive.
    ///
    /// Part of a world's deterministic closure: two states with equal
    /// pending events but different counters hand out different seqs to
    /// future events, changing default tie order under exploration.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Absorbs every pending event into `h`, commutatively.
    ///
    /// Each event is hashed into a fresh hasher — instant, seq, routing
    /// fields, payload (via `msg_fp`) — and the per-event digests are
    /// combined with wrapping addition, so the result is independent of
    /// the internal iteration order (ring vs. overflow placement, heap
    /// layout). Seqs *are* hashed: they break same-instant ties, so two
    /// queues holding equal events under different seqs are not
    /// interchangeable. The combined digest, the queue length, and the
    /// next-seq counter are then written to `h`.
    pub fn fingerprint(&self, h: &mut StableHasher, msg_fp: fn(&M, &mut StableHasher)) {
        let mut acc = 0u64;
        let mut visit = |at: Time, seq: u64, event: &Event<M>| {
            let mut eh = StableHasher::new();
            eh.write_u64(at.as_ticks());
            eh.write_u64(seq);
            event.fingerprint(&mut eh, msg_fp);
            acc = acc.wrapping_add(eh.finish());
        };
        match &self.tier {
            Tier::Calendar(c) => c.for_each(&mut visit),
            Tier::Heap(heap) => {
                for s in heap {
                    visit(s.at, s.seq, &s.event);
                }
            }
        }
        h.write_u64(acc);
        h.write_usize(self.len());
        h.write_u64(self.next_seq);
    }

    /// Rewrites every pending [`Event::Deliver`] payload through `f`,
    /// visiting events in canonical `(time, seq)` order so RNG-consuming
    /// damage is byte-identical across queue tiers — the adversary's
    /// [`crate::driver::ChurnAction::ScrambleQueue`] primitive. Instants,
    /// seqs, routing fields and the seq counter are untouched: only
    /// payload bytes change, so the dispatch schedule is preserved and
    /// corruption perturbs protocol state alone. Returns the number of
    /// payloads rewritten.
    pub fn scramble_payloads(&mut self, rng: &mut Rng, f: fn(&mut M, &mut Rng)) -> usize {
        let mut pending: Vec<Scheduled<M>> = match &mut self.tier {
            Tier::Calendar(c) => c.drain_all(),
            Tier::Heap(h) => std::mem::take(h).into_vec(),
        };
        pending.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.seq.cmp(&b.seq)));
        let mut scrambled = 0;
        for s in &mut pending {
            if let Event::Deliver { msg, .. } = &mut s.event {
                f(msg, rng);
                scrambled += 1;
            }
        }
        match &mut self.tier {
            Tier::Calendar(c) => {
                for s in pending {
                    c.schedule(s.at, s.seq, s.event);
                }
            }
            Tier::Heap(h) => h.extend(pending),
        }
        scrambled
    }

    /// Drops every pending event and rewinds the clock window and sequence
    /// counter to a fresh-queue state, **keeping** every allocation (ring
    /// buckets, heap storage) for the next run — the cross-seed reuse path
    /// of [`crate::world::World::reset`].
    pub fn clear(&mut self) {
        self.next_seq = 0;
        match &mut self.tier {
            Tier::Calendar(c) => c.clear(),
            Tier::Heap(h) => h.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn queues() -> [EventQueue<u8>; 2] {
        [EventQueue::calendar(), EventQueue::heap()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in queues() {
            q.schedule(t(5), Event::ChurnTick);
            q.schedule(t(2), Event::ChurnTick);
            q.schedule(t(9), Event::ChurnTick);
            let times: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(at, _)| at.as_ticks())
                .collect();
            assert_eq!(times, vec![2, 5, 9], "{:?}", q.kind());
        }
    }

    #[test]
    fn equal_times_are_fifo() {
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let mut q: EventQueue<u32> = match kind {
                QueueKind::Calendar => EventQueue::calendar(),
                QueueKind::Heap => EventQueue::heap(),
            };
            for i in 0..10u32 {
                q.schedule(
                    t(3),
                    Event::Deliver {
                        from: ProcessId::from_raw(0),
                        to: ProcessId::from_raw(0),
                        sent: t(3),
                        cause: 0,
                        msg: i,
                    },
                );
            }
            let msgs: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|(_, e)| match e {
                    Event::Deliver { msg, .. } => msg,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(msgs, (0..10).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in queues() {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.schedule(t(7), Event::ChurnTick);
            assert_eq!(q.peek_time(), Some(t(7)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        for mut q in queues() {
            q.schedule(t(4), Event::ChurnTick);
            q.schedule(t(1), Event::ChurnTick);
            assert_eq!(q.pop().unwrap().0, t(1));
            q.schedule(t(2), Event::ChurnTick);
            assert_eq!(q.pop().unwrap().0, t(2));
            assert_eq!(q.pop().unwrap().0, t(4));
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn far_future_events_overflow_and_come_back() {
        let mut q: EventQueue<u8> = EventQueue::calendar();
        // Far beyond the ring: must overflow, then migrate back in order.
        q.schedule(t(5 * RING_SIZE), Event::ChurnTick);
        q.schedule(t(1), Event::ChurnTick);
        q.schedule(t(5 * RING_SIZE), Event::ChurnTick);
        q.schedule(t(RING_SIZE + 3), Event::ChurnTick);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().0, t(1));
        assert_eq!(q.peek_time(), Some(t(RING_SIZE + 3)));
        assert_eq!(q.pop().unwrap().0, t(RING_SIZE + 3));
        assert_eq!(q.pop().unwrap().0, t(5 * RING_SIZE));
        assert_eq!(q.pop().unwrap().0, t(5 * RING_SIZE));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_ties_keep_fifo_order_after_migration() {
        let mut q: EventQueue<u32> = EventQueue::calendar();
        let far = t(3 * RING_SIZE + 7);
        for i in 0..20u32 {
            q.schedule(
                far,
                Event::Deliver {
                    from: ProcessId::from_raw(0),
                    to: ProcessId::from_raw(0),
                    sent: far,
                    cause: 0,
                    msg: i,
                },
            );
        }
        let msgs: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(msgs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_state_but_queue_stays_usable() {
        for mut q in queues() {
            q.schedule(t(3), Event::ChurnTick);
            q.schedule(t(900), Event::ChurnTick);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            // A cleared queue accepts near-past times again (fresh run).
            q.schedule(t(1), Event::ChurnTick);
            assert_eq!(q.pop().unwrap().0, t(1));
        }
    }

    #[test]
    fn kind_labels() {
        assert_eq!(EventQueue::<u8>::calendar().kind().label(), "calendar");
        assert_eq!(EventQueue::<u8>::heap().kind().label(), "heap");
    }

    fn deliver(to: u64, msg: u32) -> Event<u32> {
        Event::Deliver {
            from: ProcessId::from_raw(0),
            to: ProcessId::from_raw(to),
            sent: t(3),
            cause: 0,
            msg,
        }
    }

    #[test]
    fn ready_set_lists_the_earliest_cohort_in_seq_order() {
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let mut q: EventQueue<u32> = match kind {
                QueueKind::Calendar => EventQueue::calendar(),
                QueueKind::Heap => EventQueue::heap(),
            };
            let mut ready = Vec::new();
            assert_eq!(q.ready_set(&mut ready), None);
            q.schedule(t(5), Event::ChurnTick);
            q.schedule(t(3), deliver(7, 0));
            q.schedule(
                t(3),
                Event::Timer { pid: ProcessId::from_raw(2), timer: TimerId(9), cause: 0 },
            );
            assert_eq!(q.ready_set(&mut ready), Some(t(3)), "{kind:?}");
            assert_eq!(
                ready,
                vec![
                    ReadySummary {
                        seq: 1,
                        kind: ReadyKind::Deliver {
                            from: ProcessId::from_raw(0),
                            to: ProcessId::from_raw(7),
                        },
                    },
                    ReadySummary { seq: 2, kind: ReadyKind::Timer { pid: ProcessId::from_raw(2) } },
                ],
                "{kind:?}"
            );
            // Inspection does not disturb the queue.
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop().unwrap().0, t(3));
        }
    }

    #[test]
    fn pop_nth_reorders_only_within_the_instant() {
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let mut q: EventQueue<u32> = match kind {
                QueueKind::Calendar => EventQueue::calendar(),
                QueueKind::Heap => EventQueue::heap(),
            };
            for i in 0..3u32 {
                q.schedule(t(3), deliver(i as u64, i));
            }
            q.schedule(t(8), deliver(9, 9));
            // Out of range: the ready set has 3 entries.
            assert!(q.pop_nth(3).is_none(), "{kind:?}");
            assert_eq!(q.len(), 4, "{kind:?}: failed pop_nth must not lose events");
            let msg = |e| match e {
                Event::Deliver { msg, .. } => msg,
                _ => unreachable!(),
            };
            let (at, e) = q.pop_nth(1).unwrap();
            assert_eq!((at, msg(e)), (t(3), 1), "{kind:?}");
            let (_, e) = q.pop_nth(1).unwrap();
            assert_eq!(msg(e), 2, "{kind:?}");
            let (_, e) = q.pop_nth(0).unwrap();
            assert_eq!(msg(e), 0, "{kind:?}");
            let (at, e) = q.pop().unwrap();
            assert_eq!((at, msg(e)), (t(8), 9), "{kind:?}");
        }
    }

    fn fp_u32(m: &u32, h: &mut StableHasher) {
        h.write_u32(*m);
    }

    fn digest(q: &EventQueue<u32>) -> u64 {
        let mut h = StableHasher::new();
        q.fingerprint(&mut h, fp_u32);
        h.finish()
    }

    #[test]
    fn fingerprints_agree_across_tiers_and_storage_placement() {
        let mut cal: EventQueue<u32> = EventQueue::calendar();
        let mut heap: EventQueue<u32> = EventQueue::heap();
        for q in [&mut cal, &mut heap] {
            q.schedule(t(3), deliver(1, 10));
            q.schedule(t(2 * RING_SIZE), deliver(2, 20)); // overflow in calendar
            q.schedule(
                t(3),
                Event::Timer { pid: ProcessId::from_raw(5), timer: TimerId(4), cause: 0 },
            );
        }
        assert_eq!(digest(&cal), digest(&heap));

        // Popping an event from the calendar migrates overflow storage;
        // re-scheduling the same event must restore... no — popping
        // changes the pending set *and* seq allocation, so digests move.
        let before = digest(&cal);
        cal.pop();
        assert_ne!(digest(&cal), before);
    }

    #[test]
    fn fingerprint_distinguishes_seq_assignment() {
        // Same pending events, scheduled in a different order: the seqs
        // differ, so future same-instant tie-breaking differs, so the
        // digests must differ.
        let mut a: EventQueue<u32> = EventQueue::calendar();
        a.schedule(t(3), deliver(1, 10));
        a.schedule(t(3), deliver(2, 20));
        let mut b: EventQueue<u32> = EventQueue::calendar();
        b.schedule(t(3), deliver(2, 20));
        b.schedule(t(3), deliver(1, 10));
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn cloned_queue_pops_identically() {
        let mut q: EventQueue<u32> = EventQueue::calendar();
        for i in 0..6u32 {
            q.schedule(t(u64::from(i % 3)), deliver(u64::from(i), i));
        }
        q.schedule(t(4 * RING_SIZE), deliver(9, 99));
        q.pop();
        let mut fork = q.clone();
        assert_eq!(digest(&q), digest(&fork));
        loop {
            let (a, b) = (q.pop(), fork.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn scramble_is_identical_across_tiers_and_preserves_schedule() {
        let mut cal: EventQueue<u32> = EventQueue::calendar();
        let mut heap: EventQueue<u32> = EventQueue::heap();
        for q in [&mut cal, &mut heap] {
            q.schedule(t(3), deliver(1, 10));
            q.schedule(t(2 * RING_SIZE), deliver(2, 20)); // overflow in calendar
            q.schedule(
                t(3),
                Event::Timer { pid: ProcessId::from_raw(5), timer: TimerId(4), cause: 0 },
            );
            q.schedule(t(3), deliver(3, 30));
        }
        let scramble = |m: &mut u32, rng: &mut Rng| *m = rng.below(1000) as u32;
        let mut rng_a = Rng::seeded(11);
        let mut rng_b = Rng::seeded(11);
        // Only the 3 Deliver payloads are rewritten; the timer is skipped.
        assert_eq!(cal.scramble_payloads(&mut rng_a, scramble), 3);
        assert_eq!(heap.scramble_payloads(&mut rng_b, scramble), 3);
        assert_eq!(rng_a.state_words(), rng_b.state_words());
        assert_eq!(digest(&cal), digest(&heap));
        // The dispatch schedule (times, tie order, seq counter) is intact.
        assert_eq!(cal.next_seq(), 4);
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn ready_kind_targets() {
        assert_eq!(
            ReadyKind::Deliver { from: ProcessId::from_raw(1), to: ProcessId::from_raw(2) }
                .target(),
            Some(ProcessId::from_raw(2))
        );
        assert_eq!(
            ReadyKind::Timer { pid: ProcessId::from_raw(4) }.target(),
            Some(ProcessId::from_raw(4))
        );
        assert_eq!(ReadyKind::ChurnTick.target(), None);
    }
}
