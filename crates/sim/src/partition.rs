//! The partition adversary: cutting the knowledge graph along a line.
//!
//! The connectivity parameter of the geography dimension
//! ([`dds_core::knowledge::Connectivity`]) distinguishes systems whose
//! stable part always stays connected from those where it may be
//! partitioned — transiently ([`Connectivity::EventuallyConnected`]) or
//! forever ([`Connectivity::Arbitrary`]). [`PartitionDriver`] realizes
//! both: at `cut_at` it severs every edge between the lower and upper
//! halves of the *initial* membership (by identity), and — when
//! configured — heals the cut at `heal_at` by restoring the severed edges.
//!
//! While the partition is active the driver **patrols**: it wakes every
//! tick and severs any crossing edge that has appeared since — a process
//! that joins mid-partition (under a composed churn driver, see
//! [`crate::driver::Compose`]) attaches by topology policy, which knows
//! nothing of the cut and would otherwise bridge the halves. Patrol edges
//! are added to the severed list, so healing restores them too. A
//! permanent partition therefore keeps one wake-up pending forever: drive
//! such worlds with [`crate::world::World::run_until`], not
//! `run_to_quiescence`.
//!
//! [`Connectivity`]: dds_core::knowledge::Connectivity
//! [`Connectivity::EventuallyConnected`]: dds_core::knowledge::Connectivity::EventuallyConnected
//! [`Connectivity::Arbitrary`]: dds_core::knowledge::Connectivity::Arbitrary

use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::{Time, TimeDelta};
use dds_net::graph::Graph;

use crate::driver::{ChurnAction, ChurnDriver, DriverIntent};

/// Severs the graph into identity halves at `cut_at`; optionally heals at
/// `heal_at`.
#[derive(Debug, Clone)]
pub struct PartitionDriver {
    /// When the cut happens.
    pub cut_at: Time,
    /// When (if ever) the severed edges are restored.
    pub heal_at: Option<Time>,
    /// The identity below which a process belongs to the lower side.
    pub split_at: ProcessId,
    severed: Vec<(ProcessId, ProcessId)>,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    BeforeCut,
    /// Cut applied; patrolling every tick until healed (or forever).
    Active,
    Done,
}

impl PartitionDriver {
    /// A permanent partition ([`Connectivity::Arbitrary`]): processes with
    /// identity below `split_at` lose every edge to the rest, forever.
    ///
    /// [`Connectivity::Arbitrary`]: dds_core::knowledge::Connectivity::Arbitrary
    pub fn permanent(cut_at: Time, split_at: ProcessId) -> Self {
        PartitionDriver {
            cut_at,
            heal_at: None,
            split_at,
            severed: Vec::new(),
            phase: Phase::BeforeCut,
        }
    }

    /// A transient partition ([`Connectivity::EventuallyConnected`]): the
    /// cut heals at `heal_at`.
    ///
    /// # Panics
    ///
    /// Panics unless `heal_at > cut_at`.
    ///
    /// [`Connectivity::EventuallyConnected`]: dds_core::knowledge::Connectivity::EventuallyConnected
    pub fn transient(cut_at: Time, heal_at: Time, split_at: ProcessId) -> Self {
        assert!(heal_at > cut_at, "healing must follow the cut");
        PartitionDriver {
            heal_at: Some(heal_at),
            ..PartitionDriver::permanent(cut_at, split_at)
        }
    }

    fn crossing_edges(&self, graph: &Graph) -> Vec<(ProcessId, ProcessId)> {
        graph
            .edges()
            .filter(|&(a, b)| (a < self.split_at) != (b < self.split_at))
            .collect()
    }
}

impl ChurnDriver for PartitionDriver {
    fn intent(&self) -> DriverIntent {
        DriverIntent {
            arrivals_finite: true,
            concurrency_finite: true,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        Some(self.cut_at)
    }

    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        _rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let patrol = Some(now + TimeDelta::TICK);
        match self.phase {
            Phase::BeforeCut => {
                self.severed = self.crossing_edges(graph);
                let actions = self
                    .severed
                    .iter()
                    .map(|&(a, b)| ChurnAction::CutEdge(a, b))
                    .collect();
                self.phase = Phase::Active;
                (actions, patrol)
            }
            Phase::Active => {
                if self.heal_at.is_some_and(|heal| now >= heal) {
                    let actions = self
                        .severed
                        .drain(..)
                        .map(|(a, b)| ChurnAction::RestoreEdge(a, b))
                        .collect();
                    self.phase = Phase::Done;
                    return (actions, None);
                }
                // Patrol: a joiner (or a splice) wired across the cut by a
                // composed driver's churn must not bridge the partition —
                // sever any crossing edge that appeared since the cut.
                let fresh = self.crossing_edges(graph);
                let actions = fresh
                    .iter()
                    .map(|&(a, b)| ChurnAction::CutEdge(a, b))
                    .collect();
                self.severed.extend(fresh);
                (actions, patrol)
            }
            Phase::Done => (Vec::new(), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, Context};
    use crate::world::WorldBuilder;
    use dds_net::algo::is_connected;
    use dds_net::generate;

    struct Idle;
    impl Actor<()> for Idle {
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: ProcessId, _: ()) {}
    }

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    #[test]
    fn permanent_cut_disconnects_halves() {
        let mut world = WorldBuilder::new(1)
            .initial_graph(generate::torus(4, 4))
            .driver(PartitionDriver::permanent(t(5), pid(8)))
            .spawn(|_| Box::new(Idle))
            .build();
        assert!(is_connected(world.graph()));
        world.run_until(t(10));
        assert!(!is_connected(world.graph()), "cut must partition the torus");
        // No edge crosses the split.
        for (a, b) in world.graph().edges() {
            assert_eq!(a < pid(8), b < pid(8), "edge {a}-{b} crosses the cut");
        }
        world.run_until(t(100));
        assert!(!is_connected(world.graph()), "permanent means permanent");
    }

    #[test]
    fn transient_cut_heals() {
        let mut world = WorldBuilder::new(2)
            .initial_graph(generate::torus(4, 4))
            .driver(PartitionDriver::transient(t(5), t(20), pid(8)))
            .spawn(|_| Box::new(Idle))
            .build();
        world.run_until(t(10));
        assert!(!is_connected(world.graph()));
        let edges_cut = world.graph().edge_count();
        world.run_until(t(25));
        assert!(is_connected(world.graph()), "healed at t=20");
        assert!(world.graph().edge_count() > edges_cut);
    }

    #[test]
    fn joiner_during_partition_cannot_bridge_the_cut() {
        use crate::driver::{ChurnAction, Compose, Scripted};

        // Regression: the cut used to be computed from initial membership
        // only, so a process joining after `cut_at` (wired by the attach
        // policy, which knows nothing of the partition) could reconnect the
        // halves. The patrol must sever such edges by the next tick.
        let mut world = WorldBuilder::new(4)
            .initial_graph(generate::ring(6))
            .driver(Compose::new(
                PartitionDriver::transient(t(5), t(30), pid(3)),
                Scripted::new(vec![(t(10), ChurnAction::Join)]),
            ))
            .spawn(|_| Box::new(Idle))
            .build();
        world.run_until(t(8));
        assert!(!is_connected(world.graph()));
        world.run_until(t(15));
        assert_eq!(world.graph().node_count(), 7, "joiner admitted");
        for (a, b) in world.graph().edges() {
            assert_eq!(
                a < pid(3),
                b < pid(3),
                "edge {a}-{b} bridges the partition"
            );
        }
        world.run_until(t(35));
        assert!(
            is_connected(world.graph()),
            "heal restores severed edges, including the joiner's"
        );
    }

    #[test]
    #[should_panic(expected = "healing must follow")]
    fn heal_before_cut_rejected() {
        PartitionDriver::transient(t(10), t(5), pid(4));
    }

    #[test]
    fn neighbor_notifications_fire_on_cut_and_heal() {
        use std::collections::BTreeSet;

        #[derive(Default)]
        struct ViewTracker {
            downs: BTreeSet<ProcessId>,
            ups: BTreeSet<ProcessId>,
        }
        impl Actor<()> for ViewTracker {
            fn on_message(&mut self, _: &mut Context<'_, ()>, _: ProcessId, _: ()) {}
            fn on_neighbor_down(&mut self, _: &mut Context<'_, ()>, peer: ProcessId) {
                self.downs.insert(peer);
            }
            fn on_neighbor_up(&mut self, _: &mut Context<'_, ()>, peer: ProcessId) {
                self.ups.insert(peer);
            }
        }

        let mut world = WorldBuilder::new(3)
            .initial_graph(generate::ring(6))
            .driver(PartitionDriver::transient(t(5), t(10), pid(3)))
            .spawn(|_| Box::new(ViewTracker::default()))
            .build();
        world.run_until(t(30));
        // Ring 0-1-2-3-4-5-0; edges crossing the {0,1,2} | {3,4,5} split:
        // 2-3 and 5-0. Process 0 must have seen 5 go down and come back.
        let tracker: &ViewTracker = world.actor(pid(0)).unwrap();
        assert!(tracker.downs.contains(&pid(5)));
        assert!(tracker.ups.contains(&pid(5)));
    }
}
