//! The transient-corruption adversary of the self-stabilization model.
//!
//! Self-stabilization (Dijkstra 1974) asks a protocol to recover a legal
//! configuration from an *arbitrary* starting state — the abstraction of
//! transient faults: bit flips, resets, and misdelivered state that leave
//! processes running but wrong. [`CorruptionAdversary`] is the executable
//! form of that fault model: a [`ChurnDriver`] that, at chosen instants
//! (scripted or periodic), injects [`Burst`]s of damage —
//!
//! - **actor-state flips** ([`ChurnAction::CorruptRandom`] /
//!   [`ChurnAction::CorruptActor`]): the victim's
//!   [`crate::actor::Actor::corrupt`] hook overwrites its volatile state
//!   with values drawn from the run RNG;
//! - **queue scrambles** ([`ChurnAction::ScrambleQueue`]): every pending
//!   message payload is rewritten through the world's registered
//!   corruption hook, in canonical `(time, seq)` order so the damage is
//!   byte-identical across `DDS_QUEUE` tiers;
//! - **adjacency perturbation**: random knowledge edges are cut at the
//!   burst instant and restored at the adversary's next wakeup, so local
//!   membership views observe a transient topology fault.
//!
//! All randomness comes from the run RNG passed to `on_tick`, so one seed
//! fully determines the damage and runs stay byte-reproducible at any
//! `DDS_THREADS`/`DDS_QUEUE` setting. The adversary forks and fingerprints
//! (tag 6), so it composes with churn via [`crate::driver::Compose`] and
//! survives snapshot-forking exploration.

use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::{Time, TimeDelta};
use dds_net::graph::Graph;

use crate::driver::{ChurnAction, ChurnDriver, DriverIntent};
use crate::snapshot::StableHasher;

/// One corruption burst: how much damage one adversary wakeup injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Burst {
    /// Number of distinct random members whose local state is flipped.
    pub actors: usize,
    /// Whether every pending message payload is scrambled.
    pub scramble_queue: bool,
    /// Number of random knowledge edges cut now and restored at the
    /// adversary's next wakeup (a transient adjacency fault).
    pub edge_cuts: usize,
}

impl Burst {
    /// A burst that flips `actors` random members and nothing else.
    pub fn actors(actors: usize) -> Self {
        Burst { actors, ..Burst::default() }
    }

    /// Adds a queue scramble to the burst.
    pub fn with_scramble(mut self) -> Self {
        self.scramble_queue = true;
        self
    }

    /// Adds `n` transient edge cuts to the burst.
    pub fn with_edge_cuts(mut self, n: usize) -> Self {
        self.edge_cuts = n;
        self
    }
}

/// The transient-corruption adversary (see the module docs).
///
/// Built in one of two modes — or both at once, since a scripted prefix
/// composes with a periodic tail:
///
/// - [`CorruptionAdversary::scripted`]: explicit `(instant, burst)` pairs,
///   the deterministic workhorse of tests and check targets;
/// - [`CorruptionAdversary::periodic`]: the same burst every `period`,
///   starting at `start` — the sweep mode of the `stab1` experiment.
#[derive(Debug, Clone, Default)]
pub struct CorruptionAdversary {
    script: Vec<(Time, Burst)>,
    cursor: usize,
    /// `(next instant, period, burst)` of the periodic mode, if any.
    periodic: Option<(Time, TimeDelta, Burst)>,
    /// Edges cut by the previous burst, restored at the next wakeup.
    pending_restore: Vec<(ProcessId, ProcessId)>,
}

impl CorruptionAdversary {
    /// Creates a scripted adversary from `(instant, burst)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the script is not sorted by time.
    pub fn scripted(script: Vec<(Time, Burst)>) -> Self {
        assert!(
            script.windows(2).all(|w| w[0].0 <= w[1].0),
            "corruption script must be sorted by time"
        );
        CorruptionAdversary { script, ..CorruptionAdversary::default() }
    }

    /// Creates a periodic adversary injecting `burst` every `period`
    /// starting at `start`.
    pub fn periodic(start: Time, period: TimeDelta, burst: Burst) -> Self {
        CorruptionAdversary {
            periodic: Some((start, period, burst)),
            ..CorruptionAdversary::default()
        }
    }

    fn emit(burst: Burst, graph: &Graph, rng: &mut Rng, out: &mut Vec<ChurnAction>, restore: &mut Vec<(ProcessId, ProcessId)>) {
        for _ in 0..burst.actors {
            out.push(ChurnAction::CorruptRandom);
        }
        if burst.scramble_queue {
            out.push(ChurnAction::ScrambleQueue);
        }
        if burst.edge_cuts > 0 {
            // Materialize the edge list once; `edges()` iterates the
            // adjacency map in deterministic (sorted) order.
            let edges: Vec<(ProcessId, ProcessId)> = graph.edges().collect();
            for _ in 0..burst.edge_cuts {
                if edges.is_empty() {
                    break;
                }
                let (a, b) = edges[rng.index(edges.len())];
                out.push(ChurnAction::CutEdge(a, b));
                restore.push((a, b));
            }
        }
    }
}

impl ChurnDriver for CorruptionAdversary {
    fn intent(&self) -> DriverIntent {
        // Corruption neither adds nor removes members.
        DriverIntent {
            arrivals_finite: true,
            concurrency_finite: true,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        let scripted = self.script.first().map(|(t, _)| *t);
        let periodic = self.periodic.map(|(t, _, _)| t);
        match (scripted, periodic) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let mut actions = Vec::new();
        // Heal the previous burst's transient edge cuts first, so a view
        // protocol sees the fault window close before fresh damage lands.
        for (a, b) in self.pending_restore.drain(..) {
            actions.push(ChurnAction::RestoreEdge(a, b));
        }
        let mut restore = Vec::new();
        while self.cursor < self.script.len() && self.script[self.cursor].0 <= now {
            Self::emit(self.script[self.cursor].1, graph, rng, &mut actions, &mut restore);
            self.cursor += 1;
        }
        if let Some((next, period, burst)) = self.periodic {
            if next <= now {
                Self::emit(burst, graph, rng, &mut actions, &mut restore);
                self.periodic = Some((next + period, period, burst));
            }
        }
        self.pending_restore = restore;
        let scripted_next = self.script.get(self.cursor).map(|(t, _)| *t);
        let periodic_next = self.periodic.map(|(t, _, _)| t);
        let mut next = match (scripted_next, periodic_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        // If edges are pending restoration, wake up one tick later even
        // with nothing else scheduled — transient cuts must heal.
        if !self.pending_restore.is_empty() {
            let heal = now + TimeDelta::ticks(1);
            next = Some(next.map_or(heal, |n| n.min(heal)));
        }
        (actions, next)
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u8(6);
        h.write_usize(self.cursor);
        h.write_usize(self.script.len());
        match self.periodic {
            Some((next, period, burst)) => {
                h.write_bool(true);
                h.write_u64(next.as_ticks());
                h.write_u64(period.as_ticks());
                h.write_usize(burst.actors);
                h.write_bool(burst.scramble_queue);
                h.write_usize(burst.edge_cuts);
            }
            None => h.write_bool(false),
        }
        h.write_usize(self.pending_restore.len());
        for (a, b) in &self.pending_restore {
            h.write_u64(a.as_raw());
            h.write_u64(b.as_raw());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_net::generate;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    #[test]
    fn scripted_bursts_fire_in_order() {
        let mut d = CorruptionAdversary::scripted(vec![
            (t(5), Burst::actors(2)),
            (t(9), Burst::actors(1).with_scramble()),
        ]);
        assert_eq!(d.initial_wakeup(), Some(t(5)));
        let g = generate::ring(4);
        let mut rng = Rng::seeded(7);
        let (a1, n1) = d.on_tick(t(5), &g, &mut rng);
        assert_eq!(a1, vec![ChurnAction::CorruptRandom, ChurnAction::CorruptRandom]);
        assert_eq!(n1, Some(t(9)));
        let (a2, n2) = d.on_tick(t(9), &g, &mut rng);
        assert_eq!(a2, vec![ChurnAction::CorruptRandom, ChurnAction::ScrambleQueue]);
        assert_eq!(n2, None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn scripted_rejects_unsorted() {
        CorruptionAdversary::scripted(vec![
            (t(9), Burst::actors(1)),
            (t(5), Burst::actors(1)),
        ]);
    }

    #[test]
    fn periodic_mode_reschedules() {
        let burst = Burst::actors(1);
        let mut d = CorruptionAdversary::periodic(t(10), TimeDelta::ticks(10), burst);
        assert_eq!(d.initial_wakeup(), Some(t(10)));
        let g = generate::ring(4);
        let mut rng = Rng::seeded(0);
        let (a, next) = d.on_tick(t(10), &g, &mut rng);
        assert_eq!(a, vec![ChurnAction::CorruptRandom]);
        assert_eq!(next, Some(t(20)));
    }

    #[test]
    fn edge_cuts_heal_at_next_wakeup() {
        let mut d = CorruptionAdversary::scripted(vec![(t(3), Burst::default().with_edge_cuts(1))]);
        let g = generate::ring(4);
        let mut rng = Rng::seeded(1);
        let (a1, n1) = d.on_tick(t(3), &g, &mut rng);
        assert_eq!(a1.len(), 1);
        let ChurnAction::CutEdge(x, y) = a1[0] else {
            panic!("expected a cut, got {a1:?}");
        };
        // The script is exhausted, but the cut edge forces a heal wakeup.
        assert_eq!(n1, Some(t(4)));
        let (a2, n2) = d.on_tick(t(4), &g, &mut rng);
        assert_eq!(a2, vec![ChurnAction::RestoreEdge(x, y)]);
        assert_eq!(n2, None);
    }

    #[test]
    fn zero_burst_draws_nothing_from_rng() {
        // The RNG is only touched when a burst actually needs randomness:
        // a no-op spec must leave the RNG stream byte-identical.
        let mut d = CorruptionAdversary::scripted(vec![(t(2), Burst::default())]);
        let g = generate::ring(4);
        let mut rng = Rng::seeded(42);
        let before = rng.state_words();
        let (actions, next) = d.on_tick(t(2), &g, &mut rng);
        assert!(actions.is_empty());
        assert_eq!(next, None);
        assert_eq!(rng.state_words(), before);
    }

    #[test]
    fn fork_is_deep_and_fingerprint_tracks_cursor() {
        let mut d = CorruptionAdversary::scripted(vec![
            (t(1), Burst::actors(1)),
            (t(2), Burst::actors(1)),
        ]);
        let g = generate::ring(3);
        let mut rng = Rng::seeded(3);
        let mut h0 = StableHasher::default();
        assert!(d.fingerprint(&mut h0));
        d.on_tick(t(1), &g, &mut rng);
        let mut h1 = StableHasher::default();
        assert!(d.fingerprint(&mut h1));
        assert_ne!(h0.finish(), h1.finish(), "cursor advance must show");
        let fork = d.fork().expect("adversary forks");
        let mut h2 = StableHasher::default();
        assert!(fork.fingerprint(&mut h2));
        assert_eq!(h1.finish(), h2.finish(), "fork carries mutable state");
    }

    #[test]
    fn composes_with_churn_wakeups() {
        use crate::driver::Compose;
        let churn = crate::driver::Scripted::new(vec![(t(4), ChurnAction::Join)]);
        let adv = CorruptionAdversary::scripted(vec![(t(2), Burst::actors(1))]);
        let mut d = Compose::new(churn, adv);
        assert_eq!(d.initial_wakeup(), Some(t(2)));
        let g = generate::ring(3);
        let mut rng = Rng::seeded(5);
        let (a, next) = d.on_tick(t(2), &g, &mut rng);
        assert_eq!(a, vec![ChurnAction::CorruptRandom]);
        assert_eq!(next, Some(t(4)));
    }
}
