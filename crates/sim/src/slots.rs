//! Dense, identity-indexed kernel tables.
//!
//! [`ProcessId`]s are allocated by a monotone counter starting at the
//! initial membership, so within one run the raw identity space is dense:
//! a `Vec` indexed by `ProcessId::as_raw()` replaces the former
//! `BTreeMap<ProcessId, _>` tables, turning every dispatch lookup into one
//! bounds-checked index instead of a tree walk. Slots are never reused
//! (identities are never reused — the paper's infinite-arrival model), so
//! no generation counter is needed beyond the three-state lifecycle
//! `Vacant → Present → Departed` that [`SlotTable`] tracks for actors.
//!
//! Both tables keep their backing storage on [`SlotTable::clear`] /
//! [`DenseMap::clear`], which is what lets [`crate::world::World::reset`]
//! reuse one world's allocations across every seed of a sweep cell.

use dds_core::process::ProcessId;

/// Lifecycle state of one identity's slot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum Slot<T> {
    /// Never joined (or mid-dispatch: the actor is temporarily checked
    /// out by the kernel).
    #[default]
    Vacant,
    /// In the system.
    Present(T),
    /// Left or crashed; the payload is retained for post-run inspection.
    Departed(T),
}

/// A dense `ProcessId → T` table with a present/departed lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotTable<T> {
    slots: Vec<Slot<T>>,
    present: usize,
}

impl<T> Default for SlotTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        SlotTable {
            slots: Vec::new(),
            present: 0,
        }
    }

    #[inline]
    fn idx(pid: ProcessId) -> usize {
        pid.as_raw() as usize
    }

    fn slot_mut(&mut self, pid: ProcessId) -> &mut Slot<T> {
        let i = Self::idx(pid);
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, Slot::default);
        }
        &mut self.slots[i]
    }

    /// Seats `value` as present under `pid` (replacing any prior state).
    pub fn insert(&mut self, pid: ProcessId, value: T) {
        let slot = self.slot_mut(pid);
        let was_present = matches!(slot, Slot::Present(_));
        *slot = Slot::Present(value);
        if !was_present {
            self.present += 1;
        }
    }

    /// `true` when `pid` is present (departed identities are not).
    #[inline]
    pub fn contains(&self, pid: ProcessId) -> bool {
        matches!(self.slots.get(Self::idx(pid)), Some(Slot::Present(_)))
    }

    /// The present value under `pid`.
    #[inline]
    pub fn get(&self, pid: ProcessId) -> Option<&T> {
        match self.slots.get(Self::idx(pid)) {
            Some(Slot::Present(v)) => Some(v),
            _ => None,
        }
    }

    /// The value under `pid`, present **or** departed.
    #[inline]
    pub fn get_any(&self, pid: ProcessId) -> Option<&T> {
        match self.slots.get(Self::idx(pid)) {
            Some(Slot::Present(v)) | Some(Slot::Departed(v)) => Some(v),
            _ => None,
        }
    }

    /// Checks out the present value, leaving the slot vacant — the kernel
    /// does this for the duration of an actor callback so the actor can be
    /// borrowed mutably while the world is too; pair with [`Self::insert`].
    pub fn take(&mut self, pid: ProcessId) -> Option<T> {
        match self.slots.get_mut(Self::idx(pid)) {
            Some(slot @ Slot::Present(_)) => {
                self.present -= 1;
                match std::mem::take(slot) {
                    Slot::Present(v) => Some(v),
                    _ => unreachable!("matched Present above"),
                }
            }
            _ => None,
        }
    }

    /// Moves `pid` from present to departed, retaining the value. Returns
    /// `true` when the identity was present.
    pub fn depart(&mut self, pid: ProcessId) -> bool {
        match self.slots.get_mut(Self::idx(pid)) {
            Some(slot @ Slot::Present(_)) => {
                self.present -= 1;
                let v = match std::mem::take(slot) {
                    Slot::Present(v) => v,
                    _ => unreachable!("matched Present above"),
                };
                *slot = Slot::Departed(v);
                true
            }
            _ => false,
        }
    }

    /// Number of present identities.
    pub fn len(&self) -> usize {
        self.present
    }

    /// `true` when no identity is present.
    pub fn is_empty(&self) -> bool {
        self.present == 0
    }

    /// Empties the table, keeping the slot storage for the next run.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.present = 0;
    }

    /// Iterates every occupied slot as `(pid, value, present)` in identity
    /// order — departed entries included (`present == false`), since their
    /// retained state is observable through [`Self::get_any`] and so
    /// belongs to a world's fingerprint.
    pub fn iter_entries(&self) -> impl Iterator<Item = (ProcessId, &T, bool)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            let pid = ProcessId::from_raw(i as u64);
            match slot {
                Slot::Present(v) => Some((pid, v, true)),
                Slot::Departed(v) => Some((pid, v, false)),
                Slot::Vacant => None,
            }
        })
    }

    /// Builds a copy of the table by mapping every occupied slot through
    /// `f`, preserving the `Present`/`Departed` lifecycle. Returns `None`
    /// as soon as `f` does — the all-or-nothing contract world forking
    /// needs (a half-forked actor table would be unusable).
    pub fn try_clone_with(&self, mut f: impl FnMut(&T) -> Option<T>) -> Option<SlotTable<T>> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            slots.push(match slot {
                Slot::Vacant => Slot::Vacant,
                Slot::Present(v) => Slot::Present(f(v)?),
                Slot::Departed(v) => Slot::Departed(f(v)?),
            });
        }
        Some(SlotTable {
            slots,
            present: self.present,
        })
    }

    /// Capacity of the backing slot storage, in slots. Kept across
    /// [`Self::clear`] — the reuse that [`crate::world::World::reset`]
    /// relies on.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }
}

/// A dense `ProcessId → V` map for plain values (no lifecycle): entries
/// persist until [`DenseMap::clear`], mirroring the old "values of every
/// process that ever joined" table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMap<V> {
    vals: Vec<Option<V>>,
}

impl<V> DenseMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap { vals: Vec::new() }
    }

    /// Inserts (or replaces) the value under `pid`.
    pub fn insert(&mut self, pid: ProcessId, value: V) {
        let i = pid.as_raw() as usize;
        if i >= self.vals.len() {
            self.vals.resize_with(i + 1, || None);
        }
        self.vals[i] = Some(value);
    }

    /// The value under `pid`, if ever inserted.
    #[inline]
    pub fn get(&self, pid: ProcessId) -> Option<&V> {
        self.vals.get(pid.as_raw() as usize)?.as_ref()
    }

    /// Iterates `(pid, value)` in identity order — a linear scan of the
    /// dense storage.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &V)> + '_ {
        self.vals
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ProcessId::from_raw(i as u64), v)))
    }

    /// Empties the map, keeping the storage for the next run.
    pub fn clear(&mut self) {
        self.vals.clear();
    }

    /// Capacity of the backing storage, in entries. Kept across
    /// [`Self::clear`].
    pub fn capacity(&self) -> usize {
        self.vals.capacity()
    }
}

/// A dense set of [`ProcessId`]s backed by bit words.
///
/// Identity sets that protocols diffuse (gossip origins, wave
/// contributors) are subsets of the same dense identity space the tables
/// above index, so one bit per raw id replaces a `BTreeSet`: membership,
/// subset tests and unions become word-wide AND/OR instead of tree walks,
/// and a set of hundreds of processes fits in a few `u64`s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DenseSet {
    words: Vec<u64>,
}

impl DenseSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DenseSet { words: Vec::new() }
    }

    #[inline]
    fn split(pid: ProcessId) -> (usize, u64) {
        let raw = pid.as_raw();
        ((raw / 64) as usize, 1u64 << (raw % 64))
    }

    /// Inserts `pid`; returns `true` when it was not yet a member.
    pub fn insert(&mut self, pid: ProcessId) -> bool {
        let (word, bit) = Self::split(pid);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        fresh
    }

    /// `true` when `pid` is a member.
    #[inline]
    pub fn contains(&self, pid: ProcessId) -> bool {
        let (word, bit) = Self::split(pid);
        self.words.get(word).is_some_and(|w| w & bit != 0)
    }

    /// Number of members (a popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no id is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` when every member of `self` is a member of `other`.
    pub fn is_subset(&self, other: &DenseSet) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            w & !other.words.get(i).copied().unwrap_or(0) == 0
        })
    }

    /// Adds every member of `other` to `self`.
    pub fn union_with(&mut self, other: &DenseSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Empties the set, keeping the word storage.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Capacity of the backing storage, in 64-bit words. Kept across
    /// [`Self::clear`].
    pub fn capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Iterates the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = i as u64 * 64;
            (0..64u64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| ProcessId::from_raw(base + b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> ProcessId {
        ProcessId::from_raw(n)
    }

    #[test]
    fn slot_lifecycle_present_departed() {
        let mut t: SlotTable<&str> = SlotTable::new();
        assert!(t.is_empty());
        t.insert(pid(3), "a");
        assert!(t.contains(pid(3)));
        assert!(!t.contains(pid(0)));
        assert_eq!(t.get(pid(3)), Some(&"a"));
        assert_eq!(t.len(), 1);
        assert!(t.depart(pid(3)));
        assert!(!t.contains(pid(3)));
        assert_eq!(t.get(pid(3)), None);
        assert_eq!(t.get_any(pid(3)), Some(&"a"));
        assert_eq!(t.len(), 0);
        // Departing twice (or a never-seen id) is a no-op.
        assert!(!t.depart(pid(3)));
        assert!(!t.depart(pid(99)));
    }

    #[test]
    fn take_and_reinsert_round_trips() {
        let mut t: SlotTable<u32> = SlotTable::new();
        t.insert(pid(5), 7);
        let v = t.take(pid(5)).unwrap();
        assert_eq!(v, 7);
        assert!(!t.contains(pid(5)));
        assert_eq!(t.take(pid(5)), None);
        t.insert(pid(5), v + 1);
        assert_eq!(t.get(pid(5)), Some(&8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_empties_but_stays_usable() {
        let mut t: SlotTable<u32> = SlotTable::new();
        for i in 0..10 {
            t.insert(pid(i), i as u32);
        }
        t.depart(pid(2));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get_any(pid(2)), None);
        t.insert(pid(0), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_entries_spans_lifecycle_in_id_order() {
        let mut t: SlotTable<u32> = SlotTable::new();
        t.insert(pid(4), 40);
        t.insert(pid(1), 10);
        t.insert(pid(2), 20);
        t.depart(pid(2));
        let entries: Vec<(ProcessId, u32, bool)> =
            t.iter_entries().map(|(p, &v, alive)| (p, v, alive)).collect();
        assert_eq!(
            entries,
            vec![(pid(1), 10, true), (pid(2), 20, false), (pid(4), 40, true)]
        );
    }

    #[test]
    fn try_clone_with_preserves_lifecycle_and_is_all_or_nothing() {
        let mut t: SlotTable<u32> = SlotTable::new();
        t.insert(pid(0), 1);
        t.insert(pid(2), 3);
        t.depart(pid(2));
        let copy = t.try_clone_with(|&v| Some(v * 10)).unwrap();
        assert_eq!(copy.len(), 1);
        assert_eq!(copy.get(pid(0)), Some(&10));
        assert_eq!(copy.get_any(pid(2)), Some(&30));
        assert!(!copy.contains(pid(2)));
        // One unforkable entry poisons the whole copy.
        assert!(t.try_clone_with(|&v| (v != 3).then_some(v)).is_none());
    }

    #[test]
    fn dense_set_operations() {
        let mut a = DenseSet::new();
        assert!(a.is_empty());
        assert!(a.insert(pid(3)));
        assert!(!a.insert(pid(3)));
        assert!(a.insert(pid(130))); // crosses a word boundary
        assert!(a.contains(pid(3)));
        assert!(!a.contains(pid(4)));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![pid(3), pid(130)]);

        let mut b = DenseSet::new();
        b.insert(pid(3));
        assert!(b.is_subset(&a), "shorter word vector vs longer");
        assert!(!a.is_subset(&b));
        b.union_with(&a);
        assert!(a.is_subset(&b) && b.is_subset(&a));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn dense_map_basics() {
        let mut m: DenseMap<f64> = DenseMap::new();
        assert_eq!(m.get(pid(0)), None);
        m.insert(pid(4), 4.5);
        m.insert(pid(1), 1.5);
        assert_eq!(m.get(pid(4)), Some(&4.5));
        assert_eq!(m.get(pid(2)), None);
        let pairs: Vec<(ProcessId, f64)> = m.iter().map(|(p, &v)| (p, v)).collect();
        assert_eq!(pairs, vec![(pid(1), 1.5), (pid(4), 4.5)]);
        m.clear();
        assert_eq!(m.iter().count(), 0);
    }
}
