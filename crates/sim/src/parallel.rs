//! Cross-seed parallel execution of independent simulations.
//!
//! Every run of a [`crate::world::World`] is a pure function of its builder
//! configuration and seed (DESIGN.md §7): it owns its RNG, graph and event
//! queue, touches no global state, and reads no wall clock. A *sweep* — the
//! same scenario evaluated across many seeds, or many scenario cells — is
//! therefore embarrassingly parallel: cells can run on any thread in any
//! order without perturbing each other's results. [`parallel_map`] exploits
//! that: it fans a work list across a scoped thread pool and collects the
//! results **in input order**, so the output is byte-identical no matter how
//! many workers ran or how the OS scheduled them.
//!
//! The pool size defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `DDS_THREADS` environment variable; in particular
//! `DDS_THREADS=1` runs the work sequentially on the calling thread,
//! reproducing the pre-parallel behaviour bit for bit.
//!
//! No dependencies: the pool is `std::thread::scope` plus an atomic work
//! index, and per-cell hand-off uses `Mutex<Option<T>>` slots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads a sweep will use.
///
/// Reads `DDS_THREADS` (a positive integer) if set and well-formed,
/// otherwise [`std::thread::available_parallelism`], falling back to 1 when
/// even that is unavailable.
pub fn thread_count() -> usize {
    let from_env = std::env::var("DDS_THREADS")
        .ok()
        .and_then(|s| parse_threads(&s));
    from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parses a `DDS_THREADS` value: a positive decimal integer. Zero, empty,
/// or garbage values are rejected (the caller falls back to the default).
fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Maps `f` over `items` using [`thread_count`] workers, returning results
/// in input order.
///
/// See [`parallel_map_with`] for the semantics.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(thread_count(), items, f)
}

/// Maps `f` over `items` using at most `threads` workers, returning results
/// in input order.
///
/// With `threads <= 1` (or a single item) the map runs sequentially on the
/// calling thread — no pool, no atomics — which is exactly the historical
/// sequential code path. With more threads, workers claim items through an
/// atomic cursor and write each result into the slot matching its input
/// index, so the returned `Vec` is independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have finished (the
/// behaviour of [`std::thread::scope`]).
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(jobs.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = f(item);
                *slots[i].lock().expect("slot mutex poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// Like [`parallel_map_with`], but each worker first builds a private
/// arena with `init` and threads it through every item it processes —
/// the hook the protocol harness's `run_sweep` uses to reuse one `World`'s
/// allocations across all the seeds a worker
/// claims. Results still come back in input order, and with `threads <= 1`
/// the whole list runs sequentially through one arena, so the output is
/// independent of the worker count as long as `f` is a pure function of
/// `(arena-config, item)` — which `World::reset` guarantees.
pub fn parallel_map_chunked<T, R, A, I, F>(threads: usize, items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut arena = init();
        return items.into_iter().map(|t| f(&mut arena, t)).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(jobs.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut arena = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let item = jobs[i]
                        .lock()
                        .expect("job mutex poisoned")
                        .take()
                        .expect("each job is claimed exactly once");
                    let result = f(&mut arena, item);
                    *slots[i].lock().expect("slot mutex poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot mutex poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8, 200] {
            let got = parallel_map_with(threads, items.clone(), |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn sequential_and_parallel_agree_on_stateful_work() {
        // Each cell seeds its own PRNG from its input, mimicking one
        // (scenario, seed) simulation cell.
        let run = |seed: u64| {
            let mut rng = dds_core::rng::Rng::seeded(seed);
            (0..1000).map(|_| rng.next_u64() & 0xff).sum::<u64>()
        };
        let seeds: Vec<u64> = (0..32).collect();
        let seq = parallel_map_with(1, seeds.clone(), run);
        let par = parallel_map_with(8, seeds, run);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(4, empty, |x| x).is_empty());
        assert_eq!(parallel_map_with(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let got = parallel_map_with(64, vec![1, 2, 3], |x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn chunked_map_matches_plain_map_and_reuses_arenas() {
        // The arena counts how many items this worker processed; the result
        // must not depend on it (pure function of the item), and the counts
        // prove arenas are actually threaded through multiple items.
        let seeds: Vec<u64> = (0..40).collect();
        let expected: Vec<u64> = seeds.iter().map(|s| s * 3).collect();
        for threads in [1, 2, 8] {
            let got = parallel_map_chunked(
                threads,
                seeds.clone(),
                || 0usize,
                |count, s| {
                    *count += 1;
                    s * 3
                },
            );
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads("-2"), None);
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }
}
