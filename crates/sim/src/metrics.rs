//! Run metrics collected by the kernel, reported by every experiment.

use std::fmt;

/// Counters accumulated over one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages handed to the network.
    pub sends: u64,
    /// Messages delivered to a live destination.
    pub delivers: u64,
    /// Messages dropped (loss, or destination departed first).
    pub drops: u64,
    /// Timers that fired at a live owner.
    pub timer_fires: u64,
    /// Joins applied (including the initial configuration).
    pub joins: u64,
    /// Graceful leaves applied.
    pub leaves: u64,
    /// Crashes applied.
    pub crashes: u64,
    /// Largest membership observed.
    pub max_membership: usize,
}

impl Metrics {
    /// Fraction of sent messages that were delivered, `1.0` when nothing
    /// was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sends == 0 {
            1.0
        } else {
            self.delivers as f64 / self.sends as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sends ({} delivered, {} dropped), {} timer fires, {} joins / {} leaves / {} crashes, peak membership {}",
            self.sends,
            self.delivers,
            self.drops,
            self.timer_fires,
            self.joins,
            self.leaves,
            self.crashes,
            self.max_membership
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        assert_eq!(Metrics::default().delivery_ratio(), 1.0);
        let m = Metrics {
            sends: 10,
            delivers: 7,
            drops: 3,
            ..Metrics::default()
        };
        assert!((m.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counts() {
        let m = Metrics {
            sends: 5,
            joins: 2,
            ..Metrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("5 sends"));
        assert!(s.contains("2 joins"));
    }
}
