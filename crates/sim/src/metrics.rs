//! Run metrics collected by the kernel, reported by every experiment.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Counters accumulated over one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages handed to the network.
    pub sends: u64,
    /// Messages delivered to a live destination.
    pub delivers: u64,
    /// Messages dropped (loss, or destination departed first).
    pub drops: u64,
    /// Timers that fired at a live owner.
    pub timer_fires: u64,
    /// Joins applied (including the initial configuration).
    pub joins: u64,
    /// Graceful leaves applied.
    pub leaves: u64,
    /// Crashes applied.
    pub crashes: u64,
    /// Transient state corruptions injected (actor-state flips and queue
    /// scrambles applied by the corruption adversary).
    pub corruptions: u64,
    /// Largest membership observed.
    pub max_membership: usize,
}

impl Metrics {
    /// Fraction of sent messages that were delivered, `1.0` when nothing
    /// was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sends == 0 {
            1.0
        } else {
            self.delivers as f64 / self.sends as f64
        }
    }

    /// Accumulates another run's counters into this one (peak membership
    /// takes the max), used to aggregate metrics across a sweep.
    pub fn merge(&mut self, other: &Metrics) {
        self.sends += other.sends;
        self.delivers += other.delivers;
        self.drops += other.drops;
        self.timer_fires += other.timer_fires;
        self.joins += other.joins;
        self.leaves += other.leaves;
        self.crashes += other.crashes;
        self.corruptions += other.corruptions;
        self.max_membership = self.max_membership.max(other.max_membership);
    }

    /// Renders the counters as a JSON object. Hand-rolled because the
    /// vendored `serde` has no serialization backend; all fields are
    /// integers, so the output is byte-stable.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sends\":{},\"delivers\":{},\"drops\":{},\"timer_fires\":{},\"joins\":{},\"leaves\":{},\"crashes\":{},\"corruptions\":{},\"max_membership\":{}}}",
            self.sends,
            self.delivers,
            self.drops,
            self.timer_fires,
            self.joins,
            self.leaves,
            self.crashes,
            self.corruptions,
            self.max_membership
        )
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} sends ({} delivered, {} dropped), {} timer fires, {} joins / {} leaves / {} crashes, {} corruptions, peak membership {}",
            self.sends,
            self.delivers,
            self.drops,
            self.timer_fires,
            self.joins,
            self.leaves,
            self.crashes,
            self.corruptions,
            self.max_membership
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        assert_eq!(Metrics::default().delivery_ratio(), 1.0);
        let m = Metrics {
            sends: 10,
            delivers: 7,
            drops: 3,
            ..Metrics::default()
        };
        assert!((m.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_and_maxes() {
        let mut a = Metrics {
            sends: 5,
            delivers: 4,
            max_membership: 8,
            ..Metrics::default()
        };
        let b = Metrics {
            sends: 3,
            delivers: 3,
            crashes: 1,
            max_membership: 6,
            ..Metrics::default()
        };
        a.merge(&b);
        assert_eq!(a.sends, 8);
        assert_eq!(a.delivers, 7);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.max_membership, 8);
    }

    #[test]
    fn json_lists_every_counter() {
        let m = Metrics {
            sends: 5,
            joins: 2,
            max_membership: 4,
            ..Metrics::default()
        };
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"sends\":5"), "{j}");
        assert!(j.contains("\"joins\":2"), "{j}");
        assert!(j.contains("\"max_membership\":4"), "{j}");
    }

    #[test]
    fn display_mentions_counts() {
        let m = Metrics {
            sends: 5,
            joins: 2,
            ..Metrics::default()
        };
        let s = m.to_string();
        assert!(s.contains("5 sends"));
        assert!(s.contains("2 joins"));
    }
}
