//! The simulation kernel: a deterministic world of joining, leaving,
//! crashing, message-passing processes.
//!
//! A [`World`] owns the event queue, the knowledge graph, the actors, the
//! churn driver and the trace recorder. Runs are bit-reproducible: given
//! the same [`WorldBuilder`] configuration and seed, every event fires in
//! the same order (DESIGN.md §7).
//!
//! The flow of one event: pop the earliest `(time, seq)` event → dispatch
//! to the destination actor (or the churn driver) → the actor's buffered
//! effects (sends, timers, leaves) are applied → resulting notifications
//! (neighbor up/down, starts) run as nested callbacks at the same instant.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use dds_core::process::{IdSource, ProcessId};
use dds_core::rng::Rng;
use dds_core::run::{Causality, Trace, TraceEvent};
use dds_core::time::Time;
use dds_net::dynamic::{AttachRule, RepairRule};
use dds_net::graph::Graph;
use dds_obs::{ObsEvent, Sink};

use crate::actor::{Actor, Context, Effect};
use crate::delay::{DelayModel, LossModel};
use crate::driver::{ChurnAction, ChurnDriver, NoChurn};
use crate::event::{Event, EventQueue, ReadySummary, SchedulePolicy, TimerId};
use crate::metrics::Metrics;
use crate::slots::{DenseMap, SlotTable};
use crate::snapshot::StableHasher;

/// How the knowledge graph evolves when processes join and depart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyPolicy {
    /// Wiring rule for joiners.
    pub attach: AttachRule,
    /// Repair rule around departures.
    pub repair: RepairRule,
}

impl Default for TopologyPolicy {
    /// Random-3 attachment with neighbor bridging: a reasonable overlay
    /// that maintains connectivity with high probability.
    fn default() -> Self {
        TopologyPolicy {
            attach: AttachRule::RandomK(3),
            repair: RepairRule::BridgeNeighbors,
        }
    }
}

type SpawnFn<M> = Box<dyn FnMut(ProcessId) -> Box<dyn Actor<M>>>;
type ValueFn = Box<dyn FnMut(ProcessId, &mut Rng) -> f64>;

/// Builder for a simulated world.
///
/// # Examples
///
/// ```
/// use dds_net::generate;
/// use dds_sim::world::WorldBuilder;
/// use dds_sim::actor::{Actor, Context};
/// use dds_core::process::ProcessId;
///
/// struct Silent;
/// impl Actor<()> for Silent {
///     fn on_message(&mut self, _: &mut Context<'_, ()>, _: ProcessId, _: ()) {}
/// }
///
/// let mut world = WorldBuilder::new(42)
///     .initial_graph(generate::ring(5))
///     .spawn(|_| Box::new(Silent))
///     .build();
/// assert_eq!(world.members().len(), 5);
/// ```
pub struct WorldBuilder<M> {
    seed: u64,
    initial_graph: Graph,
    policy: TopologyPolicy,
    delay: DelayModel,
    loss: LossModel,
    driver: Box<dyn ChurnDriver>,
    spawn: Option<SpawnFn<M>>,
    value: ValueFn,
    sink: Option<Box<dyn Sink>>,
    schedule_policy: Option<Box<dyn SchedulePolicy>>,
    corrupt_msg: Option<fn(&mut M, &mut Rng)>,
}

impl<M> fmt::Debug for WorldBuilder<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorldBuilder")
            .field("seed", &self.seed)
            .field("initial_graph", &self.initial_graph)
            .field("policy", &self.policy)
            .field("delay", &self.delay)
            .field("loss", &self.loss)
            .finish_non_exhaustive()
    }
}

impl<M: Clone + 'static> WorldBuilder<M> {
    /// Starts a builder with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        WorldBuilder {
            seed,
            initial_graph: Graph::new(),
            policy: TopologyPolicy::default(),
            delay: DelayModel::Fixed(dds_core::time::TimeDelta::TICK),
            loss: LossModel::None,
            driver: Box::new(NoChurn),
            spawn: None,
            value: Box::new(|_, rng| rng.unit_f64() * 100.0),
            sink: None,
            schedule_policy: None,
            corrupt_msg: None,
        }
    }

    /// Sets the initial knowledge graph; its nodes become the initial
    /// membership.
    pub fn initial_graph(mut self, graph: Graph) -> Self {
        self.initial_graph = graph;
        self
    }

    /// Sets the topology policy for churn.
    pub fn policy(mut self, policy: TopologyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the message delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the message loss model.
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the churn driver.
    pub fn driver(mut self, driver: impl ChurnDriver + 'static) -> Self {
        self.driver = Box::new(driver);
        self
    }

    /// Sets the churn driver from an already-boxed trait object (the form
    /// harnesses that also feed [`World::reset`] keep it in).
    pub fn boxed_driver(mut self, driver: Box<dyn ChurnDriver>) -> Self {
        self.driver = driver;
        self
    }

    /// Sets the actor factory invoked for every process that enters the
    /// system.
    pub fn spawn(mut self, f: impl FnMut(ProcessId) -> Box<dyn Actor<M>> + 'static) -> Self {
        self.spawn = Some(Box::new(f));
        self
    }

    /// Sets the function assigning each process its local value.
    pub fn values(mut self, f: impl FnMut(ProcessId, &mut Rng) -> f64 + 'static) -> Self {
        self.value = Box::new(f);
        self
    }

    /// Installs an observability sink ([`dds_obs::Sink`]): the kernel
    /// feeds it one [`dds_obs::ObsEvent`] per observable action, starting
    /// with the initial joins. With no sink installed (the default) the
    /// dispatch loop pays one branch per event and allocates nothing.
    pub fn sink(mut self, sink: impl Sink) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Registers the payload-corruption hook backing
    /// [`crate::driver::ChurnAction::ScrambleQueue`]: when the corruption
    /// adversary scrambles the queue, every pending message payload is
    /// rewritten through `f` in canonical `(time, seq)` order. Like the
    /// actor factory, the hook is run configuration: it survives
    /// [`World::reset`] and is shared with forks. Without it (the
    /// default), queue scrambles are no-ops.
    pub fn corrupt_msg(mut self, f: fn(&mut M, &mut Rng)) -> Self {
        self.corrupt_msg = Some(f);
        self
    }

    /// Installs a [`SchedulePolicy`] controlling the order of same-instant
    /// events. With no policy installed (the default) the kernel pops in
    /// `(time, seq)` order on the allocation-free fast path; the policy
    /// hook costs one branch per step, exactly like the sink hook.
    pub fn schedule_policy(mut self, policy: impl SchedulePolicy + 'static) -> Self {
        self.schedule_policy = Some(Box::new(policy));
        self
    }

    /// Builds the world and runs the initial `on_start` callbacks at
    /// `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if no actor factory was provided.
    pub fn build(self) -> World<M> {
        let spawn = self.spawn.expect("WorldBuilder::spawn is required");
        let mut world = World {
            now: Time::ZERO,
            queue: EventQueue::new(),
            rng: Rng::seeded(self.seed),
            ids: IdSource::new(),
            graph: Graph::new(),
            policy: self.policy,
            delay: self.delay,
            loss: self.loss,
            driver: self.driver,
            spawn: Rc::new(RefCell::new(spawn)),
            value_fn: Rc::new(RefCell::new(self.value)),
            actors: SlotTable::new(),
            values: DenseMap::new(),
            members: Vec::new(),
            trace: Trace::new(),
            metrics: Metrics::default(),
            next_timer: 0,
            callbacks: VecDeque::new(),
            effect_buf: Vec::new(),
            sink: self.sink,
            schedule_policy: self.schedule_policy,
            corrupt_msg: self.corrupt_msg,
            ready_buf: Vec::new(),
            epoch: 0,
            next_obs_id: 1,
            current_cause: 0,
        };
        world.seat_initial(&self.initial_graph);
        world
    }
}

/// The per-run configuration [`World::reset`] replaces: everything a
/// [`WorldBuilder`] sets except the initial graph (passed alongside, by
/// reference) and the actor/value factories, which the reused world keeps.
pub struct ResetSpec {
    /// Determinism seed for the new run.
    pub seed: u64,
    /// Topology maintenance policy.
    pub policy: TopologyPolicy,
    /// Message delay model.
    pub delay: DelayModel,
    /// Message loss model.
    pub loss: LossModel,
    /// Churn driver for the new run.
    pub driver: Box<dyn ChurnDriver>,
    /// Observability sink, if any.
    pub sink: Option<Box<dyn Sink>>,
}

impl fmt::Debug for ResetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResetSpec")
            .field("seed", &self.seed)
            .field("policy", &self.policy)
            .field("delay", &self.delay)
            .field("loss", &self.loss)
            .finish_non_exhaustive()
    }
}

/// A pending actor callback at the current instant, paired with the id of
/// the kernel event that caused it (`0` = the environment) so effects the
/// callback produces inherit the right `cause` edge.
enum Callback<M> {
    Start(ProcessId),
    Message {
        to: ProcessId,
        from: ProcessId,
        msg: M,
    },
    Timer {
        pid: ProcessId,
        timer: TimerId,
    },
    NeighborUp {
        pid: ProcessId,
        peer: ProcessId,
    },
    NeighborDown {
        pid: ProcessId,
        peer: ProcessId,
    },
    NeighborBridge {
        pid: ProcessId,
        peer: ProcessId,
        replaced: ProcessId,
    },
}

/// A running simulated world. Build one with [`WorldBuilder`].
pub struct World<M> {
    now: Time,
    queue: EventQueue<M>,
    rng: Rng,
    ids: IdSource,
    graph: Graph,
    policy: TopologyPolicy,
    delay: DelayModel,
    loss: LossModel,
    driver: Box<dyn ChurnDriver>,
    /// Actor factory, shared (not cloned) with forks of this world: the
    /// factory is run configuration, and `Rc` keeps forking O(live state).
    spawn: Rc<RefCell<SpawnFn<M>>>,
    /// Value function, shared with forks like `spawn`.
    value_fn: Rc<RefCell<ValueFn>>,
    /// Dense identity-indexed actor table; present actors dispatch,
    /// departed ones are retained for post-run inspection.
    actors: SlotTable<Box<dyn Actor<M>>>,
    /// Dense identity-indexed local values (retained after departure).
    values: DenseMap<f64>,
    /// Membership cache mirroring `graph`'s node set in identity order —
    /// maintained on join/depart so `members()` never re-collects.
    members: Vec<ProcessId>,
    trace: Trace,
    metrics: Metrics,
    next_timer: u64,
    callbacks: VecDeque<(u64, Callback<M>)>,
    /// Reusable effect buffer handed to each callback's `Context`, so a
    /// steady-state dispatch allocates nothing.
    effect_buf: Vec<Effect<M>>,
    /// Optional observability sink; `None` (the default) keeps the
    /// dispatch loop on its allocation-free fast path.
    sink: Option<Box<dyn Sink>>,
    /// Optional same-instant ordering policy; `None` (the default) pops
    /// in `(time, seq)` order with no ready-set materialization.
    schedule_policy: Option<Box<dyn SchedulePolicy>>,
    /// Payload-corruption hook for queue scrambles — run configuration
    /// like `spawn`, kept across [`World::reset`] and carried into forks.
    corrupt_msg: Option<fn(&mut M, &mut Rng)>,
    /// Reusable ready-set buffer for the policy path.
    ready_buf: Vec<ReadySummary>,
    /// Mutation epoch: bumped on every membership or topology change, so
    /// schedule explorers can invalidate commutativity assumptions.
    epoch: u64,
    /// Next causal event id to hand out (`0` is reserved for "the
    /// environment"). Ids are assigned unconditionally at dispatch — a
    /// plain counter increment, so the no-sink fast path stays
    /// allocation-free and id assignment is identical with and without a
    /// sink installed. Excluded from [`World::fingerprint`], like the
    /// trace it annotates.
    next_obs_id: u64,
    /// The id of the event whose callback is currently producing effects
    /// (`0` between dispatches): sends, timer-sets and leaves performed by
    /// an actor are caused by the event that invoked it.
    current_cause: u64,
}

impl<M> fmt::Debug for World<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("members", &self.graph.node_count())
            .field("pending_events", &self.queue.len())
            .field("metrics", &self.metrics)
            .finish_non_exhaustive()
    }
}

impl<M: Clone + 'static> World<M> {
    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Seats the initial membership of a (fresh or reset) world and runs
    /// the `on_start` callbacks at `t = 0`.
    fn seat_initial(&mut self, initial: &Graph) {
        let next_raw = initial.nodes().map(|p| p.as_raw() + 1).max().unwrap_or(0);
        self.ids = IdSource::starting_at(next_raw);
        let intent = self.driver.intent();
        self.trace
            .set_intent(intent.arrivals_finite, intent.concurrency_finite);
        for pid in initial.nodes() {
            let value = (self.value_fn.borrow_mut())(pid, &mut self.rng);
            self.values.insert(pid, value);
            let actor = (self.spawn.borrow_mut())(pid);
            self.actors.insert(pid, actor);
            // Each initial join gets an event id; the process's Start
            // callback carries it so first-step effects trace back to the
            // spawn (the spawn → first-step cause edge).
            let join_id = self.fresh_id();
            let causal = Causality { id: join_id, cause: 0 };
            self.trace.push_caused(TraceEvent::Join { pid, at: Time::ZERO }, causal);
            self.metrics.joins += 1;
            self.emit(ObsEvent::Join { pid, at: Time::ZERO }, causal);
            self.callbacks.push_back((join_id, Callback::Start(pid)));
        }
        self.graph = initial.clone();
        self.members.clear();
        self.members.extend(self.graph.nodes());
        self.metrics.max_membership = self.graph.node_count();
        self.drain_callbacks();
        if let Some(t) = self.driver.initial_wakeup() {
            self.queue.schedule(t, Event::ChurnTick);
        }
    }

    /// Rewinds this world to the state a fresh [`WorldBuilder::build`]
    /// with the given configuration would produce, **reusing** the
    /// allocations accumulated by previous runs: event-queue buckets, the
    /// callback queue, the effect buffer, the member cache, and the slot
    /// and trace storage. The actor factory and value function from the
    /// original build are kept — reuse a world only across runs that share
    /// them (a sweep cell where only the seed varies, in practice).
    ///
    /// A reset world reproduces a freshly built world's run byte for byte
    /// (pinned by the `world_reset` regression test).
    pub fn reset(&mut self, initial_graph: &Graph, spec: ResetSpec) {
        self.now = Time::ZERO;
        self.queue.clear();
        self.rng = Rng::seeded(spec.seed);
        self.policy = spec.policy;
        self.delay = spec.delay;
        self.loss = spec.loss;
        self.driver = spec.driver;
        self.actors.clear();
        self.values.clear();
        self.members.clear();
        self.trace.clear();
        self.metrics = Metrics::default();
        self.next_timer = 0;
        self.callbacks.clear();
        self.sink = spec.sink;
        // Schedule policies are run-scoped, like sinks: a reset world goes
        // back to default order until a policy is installed again.
        self.schedule_policy = None;
        self.epoch = 0;
        self.next_obs_id = 1;
        self.current_cause = 0;
        self.seat_initial(initial_graph);
    }

    /// The current membership, in identity order. Borrows a cached list —
    /// call `.to_vec()` if you need an owned copy.
    pub fn members(&self) -> &[ProcessId] {
        &self.members
    }

    /// The current knowledge graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The run trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Forwards `ev` to the installed sink, if any — the hook harnesses
    /// use to add their own observations (protocol round/phase spans) to
    /// the kernel's stream. The observation gets a fresh event id so it
    /// becomes a node of the causal DAG; its cause is the event being
    /// dispatched when it is emitted mid-callback, or the environment
    /// (`0`) when emitted between steps.
    pub fn observe(&mut self, ev: ObsEvent) {
        let causal = Causality { id: self.fresh_id(), cause: self.current_cause };
        self.emit(ev, causal);
    }

    /// Installs (or replaces) the observability sink mid-run.
    pub fn set_sink(&mut self, sink: impl Sink) {
        self.sink = Some(Box::new(sink));
    }

    /// Removes and returns the installed sink, restoring the
    /// allocation-free fast path. Harnesses call this after a run to
    /// recover the accumulated [`dds_obs::RunReport`] / flight recorder.
    pub fn take_sink(&mut self) -> Option<Box<dyn Sink>> {
        self.sink.take()
    }

    /// Installs (or replaces) the schedule policy mid-run.
    pub fn set_schedule_policy(&mut self, policy: impl SchedulePolicy + 'static) {
        self.schedule_policy = Some(Box::new(policy));
    }

    /// Removes and returns the installed schedule policy, restoring the
    /// default `(time, seq)` dispatch order.
    pub fn take_schedule_policy(&mut self) -> Option<Box<dyn SchedulePolicy>> {
        self.schedule_policy.take()
    }

    /// The current mutation epoch: increments on every join, departure and
    /// edge change (see [`SchedulePolicy`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    #[inline]
    fn emit(&mut self, ev: ObsEvent, causal: Causality) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&ev, causal);
        }
    }

    /// Hands out the next causal event id. Called on every identified
    /// kernel event regardless of whether a sink is installed, so the id
    /// sequence — and therefore every downstream causal artifact — is a
    /// pure function of the run, never of observation.
    #[inline]
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_obs_id;
        self.next_obs_id += 1;
        id
    }

    /// The local value of a process (present or departed).
    pub fn value_of(&self, pid: ProcessId) -> Option<f64> {
        self.values.get(pid).copied()
    }

    /// The local values of every process that ever joined.
    pub fn values(&self) -> &DenseMap<f64> {
        &self.values
    }

    /// The delay model in force (protocols use its bound for timeouts).
    pub fn delay_model(&self) -> DelayModel {
        self.delay
    }

    /// Inspects an actor's state by downcasting (present or departed
    /// processes).
    pub fn actor<A: Actor<M>>(&self, pid: ProcessId) -> Option<&A> {
        self.actors.get_any(pid).and_then(|a| {
            let any: &dyn Any = &**a;
            any.downcast_ref::<A>()
        })
    }

    /// Schedules delivery of `msg` to `pid` at instant `at` (from itself) —
    /// the hook the harness uses to start protocol instances.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, at: Time, pid: ProcessId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past");
        self.queue.schedule(
            at,
            Event::Deliver {
                from: pid,
                to: pid,
                sent: at,
                cause: 0, // injected by the environment
                msg,
            },
        );
    }

    /// Dispatches the next event. Returns `false` when the queue is empty.
    ///
    /// With no [`SchedulePolicy`] installed this pops in `(time, seq)`
    /// order on the allocation-free fast path; with a policy, the ready
    /// set (every event at the earliest instant) is materialized into a
    /// reused buffer and the policy picks which entry dispatches.
    pub fn step(&mut self) -> bool {
        let next = match &mut self.schedule_policy {
            None => self.queue.pop(),
            Some(policy) => {
                let mut ready = std::mem::take(&mut self.ready_buf);
                let popped = match self.queue.ready_set(&mut ready) {
                    Some(at) if ready.len() > 1 => {
                        let idx = policy.choose(at, self.epoch, &ready).min(ready.len() - 1);
                        self.queue.pop_nth(idx)
                    }
                    Some(at) if ready.len() == 1 => {
                        policy.observe(at, self.epoch, &ready[0]);
                        self.queue.pop()
                    }
                    _ => self.queue.pop(),
                };
                self.ready_buf = ready;
                popped
            }
        };
        let Some((at, event)) = next else {
            return false;
        };
        self.dispatch(at, event);
        true
    }

    /// Dispatches the `n`-th ready event (seq order) at the earliest
    /// pending instant, bypassing any installed [`SchedulePolicy`] — the
    /// primitive a *forking* explorer drives choice points with, where the
    /// explorer itself owns the decision instead of a replay policy.
    /// Returns `false` when the queue is empty or `n` is out of range.
    pub fn step_nth(&mut self, n: usize) -> bool {
        let Some((at, event)) = self.queue.pop_nth(n) else {
            return false;
        };
        self.dispatch(at, event);
        true
    }

    /// Fills `out` with the ready set (every event pending at the
    /// earliest instant, in seq order), returning that instant — the
    /// inspection half of [`World::step_nth`].
    pub fn ready_set(&mut self, out: &mut Vec<ReadySummary>) -> Option<Time> {
        self.queue.ready_set(out)
    }

    /// The instant of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Advances the clock to `deadline` without dispatching anything —
    /// the tail of [`World::run_until`], split out for explorers that
    /// drive dispatch through [`World::step_nth`].
    pub fn idle_until(&mut self, deadline: Time) {
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Snapshots this world into an independent copy that will replay the
    /// exact same future for the same dispatch decisions, or `None` when
    /// some component does not support forking (an actor or the churn
    /// driver returned `None` from its `fork` hook, or a callback is
    /// mid-flight).
    ///
    /// Cost is O(live state): present/departed actors, pending events,
    /// graph adjacency, and the member/value tables are deep-copied; the
    /// actor factory and value function are *shared* behind `Rc` (they are
    /// immutable run configuration). Sinks and schedule policies are
    /// run-scoped and not carried into the fork, mirroring
    /// [`World::reset`]; a forking explorer drives the copy through
    /// [`World::step_nth`] instead.
    ///
    /// The fork starts with an *empty* trace: the trace is an
    /// observational accumulator that grows with every dispatch, so
    /// copying it would make each fork O(events-so-far) instead of
    /// O(live state), and nothing behavioral reads it (fingerprints
    /// exclude it; checkers read actor state; counterexample dumps
    /// replay the plan from scratch, which regenerates the full trace).
    pub fn try_fork(&self) -> Option<World<M>> {
        if !self.callbacks.is_empty() {
            return None;
        }
        let driver = self.driver.fork()?;
        let actors = self.actors.try_clone_with(|a| a.fork())?;
        Some(World {
            now: self.now,
            queue: self.queue.clone(),
            rng: self.rng.clone(),
            ids: self.ids.clone(),
            graph: self.graph.clone(),
            policy: self.policy,
            delay: self.delay,
            loss: self.loss,
            driver,
            spawn: Rc::clone(&self.spawn),
            value_fn: Rc::clone(&self.value_fn),
            actors,
            values: self.values.clone(),
            members: self.members.clone(),
            trace: Trace::new(),
            metrics: self.metrics,
            next_timer: self.next_timer,
            callbacks: VecDeque::new(),
            effect_buf: Vec::new(),
            sink: None,
            schedule_policy: None,
            corrupt_msg: self.corrupt_msg,
            ready_buf: Vec::new(),
            epoch: self.epoch,
            // Causal ids continue from the parent so the fork's future
            // events never reuse an id the shared prefix already assigned.
            next_obs_id: self.next_obs_id,
            current_cause: self.current_cause,
        })
    }

    /// Canonical fingerprint of the world's *behavioral* state, or `None`
    /// when some actor or the churn driver does not support
    /// fingerprinting.
    ///
    /// Two worlds with equal fingerprints are (up to hash collision)
    /// indistinguishable to any future schedule: the hash covers the
    /// clock, mutation epoch, timer counter, the raw RNG stream position
    /// (two states that differ only in how many draws they consumed
    /// diverge on the next draw, so the stream position *must* be
    /// hashed), identity allocation, membership, graph adjacency, local
    /// values (bit-exact), every actor slot including departed ones, the
    /// driver, and the pending event set including its seq numbering.
    /// Trace and metrics are deliberately excluded: they are
    /// observational accumulators that cannot influence future behavior,
    /// so deduplicating across them is what makes dedup useful — but it
    /// means a pruned branch's trace/metrics are those of the first visit.
    pub fn fingerprint(&self, msg_fp: fn(&M, &mut StableHasher)) -> Option<u64> {
        let mut h = StableHasher::new();
        h.write_u64(self.now.as_ticks());
        h.write_u64(self.epoch);
        h.write_u64(self.next_timer);
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
        h.write_u64(self.ids.allocated());
        h.write_usize(self.members.len());
        for &pid in &self.members {
            h.write_u64(pid.as_raw());
        }
        h.write_usize(self.graph.node_count());
        for pid in self.graph.nodes() {
            h.write_u64(pid.as_raw());
            let nbrs = self.graph.neighbors(pid).unwrap_or(&[]);
            h.write_usize(nbrs.len());
            for &n in nbrs {
                h.write_u64(n.as_raw());
            }
        }
        for (pid, v) in self.values.iter() {
            h.write_u64(pid.as_raw());
            h.write_u64(v.to_bits());
        }
        for (pid, actor, present) in self.actors.iter_entries() {
            h.write_u64(pid.as_raw());
            h.write_bool(present);
            if !actor.fingerprint(&mut h) {
                return None;
            }
        }
        if !self.driver.fingerprint(&mut h) {
            return None;
        }
        self.queue.fingerprint(&mut h, msg_fp);
        Some(h.finish())
    }

    /// Runs one popped event through the dispatch match and drains the
    /// resulting callbacks — shared tail of [`World::step`] and
    /// [`World::step_nth`].
    fn dispatch(&mut self, at: Time, event: Event<M>) {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        if self.sink.is_some() {
            let depth = self.queue.len();
            self.emit(ObsEvent::Step { at, queue_depth: depth }, Causality::default());
        }
        match event {
            Event::Deliver { from, to, sent, cause, msg } => {
                // The delivery (or the drop, if the destination departed)
                // is caused by the send that put the message in flight —
                // the send → deliver edge of the happened-before DAG.
                let causal = Causality { id: self.fresh_id(), cause };
                if self.actors.contains(to) {
                    self.trace.push_caused(TraceEvent::Deliver { from, to, at }, causal);
                    self.metrics.delivers += 1;
                    if self.sink.is_some() {
                        self.emit(
                            ObsEvent::Deliver {
                                from,
                                to,
                                at,
                                latency: at.saturating_since(sent),
                            },
                            causal,
                        );
                    }
                    self.callbacks.push_back((causal.id, Callback::Message { to, from, msg }));
                } else {
                    self.trace.push_caused(TraceEvent::Drop { from, to, at }, causal);
                    self.metrics.drops += 1;
                    self.emit(ObsEvent::Drop { from, to, at }, causal);
                }
            }
            Event::Timer { pid, timer, cause } => {
                if self.actors.contains(pid) {
                    // Timer-set → fire edge: the fire's cause is the event
                    // whose callback armed the timer.
                    let causal = Causality { id: self.fresh_id(), cause };
                    self.metrics.timer_fires += 1;
                    self.emit(ObsEvent::TimerFire { pid, at }, causal);
                    self.callbacks.push_back((causal.id, Callback::Timer { pid, timer }));
                }
            }
            Event::ChurnTick => {
                let (actions, next) = self.driver.on_tick(self.now, &self.graph, &mut self.rng);
                for action in actions {
                    self.apply_churn(action);
                }
                if let Some(t) = next {
                    assert!(t > self.now, "churn driver must advance time");
                    self.queue.schedule(t, Event::ChurnTick);
                }
            }
        }
        self.drain_callbacks();
    }

    /// Runs until the queue holds no event at or before `deadline`, then
    /// advances the clock to `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while self
            .queue
            .peek_time()
            .is_some_and(|t| t <= deadline)
        {
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until the event queue is empty (only safe with drivers that
    /// stop; a periodic driver never drains).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Applies one churn action. Churn originates from the driver, not
    /// from any traced event, so joins/departures it performs carry cause
    /// `0` (the environment).
    fn apply_churn(&mut self, action: ChurnAction) {
        match action {
            ChurnAction::Join => {
                let pid = self.ids.fresh();
                self.admit(pid, AdmitWiring::Policy, 0);
            }
            ChurnAction::Leave(pid) => self.depart(pid, false, 0),
            ChurnAction::Crash(pid) => self.depart(pid, true, 0),
            ChurnAction::LeaveRandom => {
                if let Some(&pid) = self.rng.choose(&self.members) {
                    self.depart(pid, false, 0);
                }
            }
            ChurnAction::CrashRandom => {
                if let Some(&pid) = self.rng.choose(&self.members) {
                    self.depart(pid, true, 0);
                }
            }
            ChurnAction::InsertBetween(a, b) => {
                if !self.graph.has_edge(a, b) {
                    return;
                }
                let pid = self.ids.fresh();
                self.admit(pid, AdmitWiring::Splice(a, b), 0);
            }
            ChurnAction::CutEdge(a, b) => {
                if self.graph.has_edge(a, b) {
                    self.epoch += 1;
                    self.graph.remove_edge(a, b);
                    self.callbacks.push_back((0, Callback::NeighborDown { pid: a, peer: b }));
                    self.callbacks.push_back((0, Callback::NeighborDown { pid: b, peer: a }));
                }
            }
            ChurnAction::RestoreEdge(a, b) => {
                if a != b
                    && self.graph.contains(a)
                    && self.graph.contains(b)
                    && !self.graph.has_edge(a, b)
                {
                    self.epoch += 1;
                    self.graph.add_edge(a, b);
                    self.callbacks.push_back((0, Callback::NeighborUp { pid: a, peer: b }));
                    self.callbacks.push_back((0, Callback::NeighborUp { pid: b, peer: a }));
                }
            }
            ChurnAction::CorruptActor(pid) => self.corrupt_actor(pid),
            ChurnAction::CorruptRandom => {
                if let Some(&pid) = self.rng.choose(&self.members) {
                    self.corrupt_actor(pid);
                }
            }
            ChurnAction::ScrambleQueue => {
                if let Some(f) = self.corrupt_msg {
                    let n = self.queue.scramble_payloads(&mut self.rng, f);
                    if n > 0 {
                        self.epoch += 1;
                        self.metrics.corruptions += n as u64;
                    }
                }
            }
        }
    }

    /// Overwrites a present process's actor state via its
    /// [`Actor::corrupt`] hook — the transient-fault injection of the
    /// self-stabilization model. A no-op for absent processes and actors
    /// that opt out; otherwise the mutation epoch bumps (state changed
    /// outside normal dispatch) and a `Corrupt` event is traced and
    /// emitted so recorders can pin the injection instant.
    fn corrupt_actor(&mut self, pid: ProcessId) {
        if !self.graph.contains(pid) {
            return;
        }
        let Some(mut actor) = self.actors.take(pid) else {
            return;
        };
        let corrupted = actor.corrupt(&mut self.rng);
        self.actors.insert(pid, actor);
        if corrupted {
            self.epoch += 1;
            self.metrics.corruptions += 1;
            let causal = Causality { id: self.fresh_id(), cause: 0 };
            self.trace.push_caused(TraceEvent::Corrupt { pid, at: self.now }, causal);
            self.emit(ObsEvent::Corrupt { pid, at: self.now }, causal);
        }
    }

    fn admit(&mut self, pid: ProcessId, wiring: AdmitWiring, cause: u64) {
        self.epoch += 1;
        // Allocate the join's event id up front: every notification the
        // admission produces (splice cuts, start, neighbor-ups) descends
        // from the join node in the causal DAG.
        let join_id = self.fresh_id();
        let value = (self.value_fn.borrow_mut())(pid, &mut self.rng);
        self.values.insert(pid, value);
        let wired_to: Vec<ProcessId> = match wiring {
            AdmitWiring::Policy => self
                .policy
                .attach
                .attach(&mut self.graph, pid, &mut self.rng)
                .into_iter()
                .collect(),
            AdmitWiring::Splice(a, b) => {
                self.graph.add_node(pid);
                self.graph.add_edge(pid, a);
                self.graph.add_edge(pid, b);
                self.graph.remove_edge(a, b);
                self.callbacks.push_back((join_id, Callback::NeighborDown { pid: a, peer: b }));
                self.callbacks.push_back((join_id, Callback::NeighborDown { pid: b, peer: a }));
                vec![a, b]
            }
        };
        if let Err(i) = self.members.binary_search(&pid) {
            self.members.insert(i, pid);
        }
        let actor = (self.spawn.borrow_mut())(pid);
        self.actors.insert(pid, actor);
        let causal = Causality { id: join_id, cause };
        self.trace.push_caused(TraceEvent::Join { pid, at: self.now }, causal);
        self.metrics.joins += 1;
        self.emit(ObsEvent::Join { pid, at: self.now }, causal);
        self.metrics.max_membership = self.metrics.max_membership.max(self.graph.node_count());
        self.callbacks.push_back((join_id, Callback::Start(pid)));
        for peer in wired_to {
            self.callbacks.push_back((join_id, Callback::NeighborUp { pid: peer, peer: pid }));
        }
    }

    fn depart(&mut self, pid: ProcessId, crashed: bool, cause: u64) {
        if !self.graph.contains(pid) {
            return;
        }
        self.epoch += 1;
        // Record which neighbor pairs were already connected so bridge
        // repairs can be announced as NeighborUp.
        let nbrs: Vec<ProcessId> = self
            .graph
            .neighbors(pid)
            .map(|s| s.to_vec())
            .unwrap_or_default();
        let mut pre_connected = Vec::new();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if self.graph.has_edge(nbrs[i], nbrs[j]) {
                    pre_connected.push((nbrs[i], nbrs[j]));
                }
            }
        }
        self.policy.repair.detach(&mut self.graph, pid);
        if let Ok(i) = self.members.binary_search(&pid) {
            self.members.remove(i);
        }
        self.actors.depart(pid);
        // Bridge and down notifications below all descend from this
        // departure in the causal DAG.
        let leave_id = self.fresh_id();
        let causal = Causality { id: leave_id, cause };
        if crashed {
            self.trace.push_caused(TraceEvent::Crash { pid, at: self.now }, causal);
            self.metrics.crashes += 1;
            self.emit(ObsEvent::Crash { pid, at: self.now }, causal);
        } else {
            self.trace.push_caused(TraceEvent::Leave { pid, at: self.now }, causal);
            self.metrics.leaves += 1;
            self.emit(ObsEvent::Leave { pid, at: self.now }, causal);
        }
        // Announce bridge edges created by the repair rule BEFORE the
        // departure notifications: a protocol waiting on the departed
        // process must learn its replacement routes first, or it may give
        // up on the subtree in the instant between the two notifications.
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, b) = (nbrs[i], nbrs[j]);
                if self.graph.has_edge(a, b) && !pre_connected.contains(&(a, b)) {
                    self.callbacks.push_back((
                        leave_id,
                        Callback::NeighborBridge { pid: a, peer: b, replaced: pid },
                    ));
                    self.callbacks.push_back((
                        leave_id,
                        Callback::NeighborBridge { pid: b, peer: a, replaced: pid },
                    ));
                }
            }
        }
        for &n in &nbrs {
            if self.graph.contains(n) {
                self.callbacks.push_back((leave_id, Callback::NeighborDown { pid: n, peer: pid }));
            }
        }
    }

    fn drain_callbacks(&mut self) {
        while let Some((cause, cb)) = self.callbacks.pop_front() {
            self.run_callback(cause, cb);
        }
        // Between dispatches nothing is "currently executing": harness
        // observations made now attach to the environment.
        self.current_cause = 0;
    }

    fn run_callback(&mut self, cause: u64, cb: Callback<M>) {
        let pid = match &cb {
            Callback::Start(p)
            | Callback::Message { to: p, .. }
            | Callback::Timer { pid: p, .. }
            | Callback::NeighborUp { pid: p, .. }
            | Callback::NeighborDown { pid: p, .. }
            | Callback::NeighborBridge { pid: p, .. } => *p,
        };
        let Some(mut actor) = self.actors.take(pid) else {
            return; // departed between scheduling and dispatch
        };
        let value = self.values.get(pid).copied().unwrap_or(0.0);
        // Borrow the neighbor slice straight out of the graph and hand the
        // kernel's reusable effect buffer to the context: no per-dispatch
        // allocation. The graph cannot change while the callback runs (all
        // mutation is deferred through the effect buffer and callback
        // queue), so the slice stays valid.
        let mut effects = std::mem::take(&mut self.effect_buf);
        // Catch unwinds so the flight recorder can dump the events leading
        // up to an actor panic before it propagates (the world — and with
        // it the sink — is dropped during the unwind, so the recorder must
        // flush here or the tail is lost).
        let caught = {
            let neighbors = self.graph.neighbors(pid).unwrap_or(&[]);
            let mut ctx = Context::new(
                pid,
                self.now,
                value,
                neighbors,
                &mut self.rng,
                &mut self.next_timer,
                &mut effects,
            );
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match cb {
                Callback::Start(_) => actor.on_start(&mut ctx),
                Callback::Message { from, msg, .. } => actor.on_message(&mut ctx, from, msg),
                Callback::Timer { timer, .. } => actor.on_timer(&mut ctx, timer),
                Callback::NeighborUp { peer, .. } => actor.on_neighbor_up(&mut ctx, peer),
                Callback::NeighborDown { peer, .. } => actor.on_neighbor_down(&mut ctx, peer),
                Callback::NeighborBridge { peer, replaced, .. } => {
                    actor.on_neighbor_bridge(&mut ctx, peer, replaced)
                }
            }))
        };
        if let Err(payload) = caught {
            if let Some(sink) = self.sink.as_mut() {
                sink.fail(&format!("actor p{} panicked", pid.as_raw()), self.now);
            }
            std::panic::resume_unwind(payload);
        }
        self.actors.insert(pid, actor);
        self.current_cause = cause;
        self.apply_effects(pid, &mut effects);
        self.effect_buf = effects;
    }

    /// Applies a callback's buffered effects. Every effect is caused by
    /// the event whose callback produced it ([`World::current_cause`]):
    /// sends become traced events with fresh ids (and seed the scheduled
    /// delivery's cause), timer-sets propagate the cause to the future
    /// fire, leaves cause the departure.
    fn apply_effects(&mut self, pid: ProcessId, effects: &mut Vec<Effect<M>>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    self.metrics.sends += 1;
                    let causal = Causality { id: self.fresh_id(), cause: self.current_cause };
                    if self.loss.drops(&mut self.rng) {
                        self.trace.push_caused(
                            TraceEvent::Drop { from: pid, to, at: self.now },
                            causal,
                        );
                        self.metrics.drops += 1;
                        self.emit(ObsEvent::Drop { from: pid, to, at: self.now }, causal);
                    } else {
                        self.trace.push_caused(
                            TraceEvent::Send { from: pid, to, at: self.now },
                            causal,
                        );
                        self.emit(ObsEvent::Send { from: pid, to, at: self.now }, causal);
                        let delay = self.delay.sample(&mut self.rng);
                        self.queue.schedule(
                            self.now + delay,
                            Event::Deliver {
                                from: pid,
                                to,
                                sent: self.now,
                                cause: causal.id,
                                msg,
                            },
                        );
                    }
                }
                Effect::SetTimer { id, delay } => {
                    self.queue.schedule(
                        self.now + delay,
                        Event::Timer { pid, timer: id, cause: self.current_cause },
                    );
                }
                Effect::Leave => {
                    self.depart(pid, false, self.current_cause);
                }
            }
        }
    }
}

enum AdmitWiring {
    Policy,
    Splice(ProcessId, ProcessId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BalancedChurn, Scripted};
    use dds_core::churn::ChurnSpec;
    use dds_core::time::TimeDelta;
    use dds_net::generate;

    /// Echoes every message back to its sender and counts traffic.
    struct Echo {
        received: u32,
    }

    impl Actor<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
            self.received += 1;
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn echo_world(seed: u64) -> World<u32> {
        WorldBuilder::new(seed)
            .initial_graph(generate::ring(4))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build()
    }

    #[test]
    fn ping_pong_counts_messages() {
        let mut w = echo_world(1);
        // Inject a 5-hop ping-pong between p0 and itself... inject sends
        // p0 -> p0, then it echoes to itself until the counter hits 0.
        w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 4);
        w.run_to_quiescence();
        let echo: &Echo = w.actor(ProcessId::from_raw(0)).unwrap();
        assert_eq!(echo.received, 5); // initial + 4 echoes
        assert_eq!(w.metrics().delivers, 5);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed| {
            let mut w = echo_world(seed);
            w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 10);
            w.run_to_quiescence();
            (*w.metrics(), w.trace().len(), w.now())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn message_to_departed_process_is_dropped() {
        let mut w: World<u32> = WorldBuilder::new(2)
            .initial_graph(generate::ring(4))
            .driver(Scripted::new(vec![(
                Time::from_ticks(3),
                ChurnAction::Leave(ProcessId::from_raw(1)),
            )]))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build();
        // Delivery at t=6, after p1 left at t=3.
        w.inject(Time::from_ticks(6), ProcessId::from_raw(1), 0);
        w.run_to_quiescence();
        assert_eq!(w.metrics().drops, 1);
        assert_eq!(w.metrics().delivers, 0);
        assert_eq!(w.metrics().leaves, 1);
        assert_eq!(w.members().len(), 3);
    }

    #[test]
    fn churn_preserves_membership_size_under_balanced_driver() {
        let spec = ChurnSpec::rate(0.25, TimeDelta::ticks(5)).unwrap();
        let mut w: World<u32> = WorldBuilder::new(3)
            .initial_graph(generate::ring(8))
            .driver(BalancedChurn::new(spec))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build();
        w.run_until(Time::from_ticks(100));
        assert_eq!(w.members().len(), 8, "balanced churn preserves size");
        assert!(w.metrics().joins > 8, "churn actually happened");
        assert_eq!(
            w.metrics().joins as u64 - 8,
            w.metrics().leaves,
            "every join after start pairs with a leave"
        );
    }

    #[test]
    fn trace_records_presence_correctly_under_churn() {
        let spec = ChurnSpec::rate(0.5, TimeDelta::ticks(4)).unwrap();
        let mut w: World<u32> = WorldBuilder::new(4)
            .initial_graph(generate::ring(6))
            .driver(BalancedChurn::new(spec))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build();
        w.run_until(Time::from_ticks(40));
        let presence = w.trace().presence();
        assert_eq!(presence.max_concurrency(), 6);
        let members_now: Vec<ProcessId> = w.members().to_vec();
        let from_trace = presence.members_at(w.now());
        assert_eq!(members_now, from_trace);
    }

    #[test]
    fn values_are_retained_for_departed_processes() {
        let mut w: World<u32> = WorldBuilder::new(5)
            .initial_graph(generate::ring(3))
            .driver(Scripted::new(vec![(
                Time::from_ticks(2),
                ChurnAction::Leave(ProcessId::from_raw(0)),
            )]))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .values(|pid, _| pid.as_raw() as f64 * 10.0)
            .build();
        w.run_to_quiescence();
        assert_eq!(w.value_of(ProcessId::from_raw(0)), Some(0.0));
        assert_eq!(w.value_of(ProcessId::from_raw(2)), Some(20.0));
        assert_eq!(w.value_of(ProcessId::from_raw(99)), None);
    }

    #[test]
    fn insert_between_splices_topology() {
        let mut w: World<u32> = WorldBuilder::new(6)
            .initial_graph(generate::path(2))
            .driver(Scripted::new(vec![(
                Time::from_ticks(2),
                ChurnAction::InsertBetween(ProcessId::from_raw(0), ProcessId::from_raw(1)),
            )]))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build();
        w.run_to_quiescence();
        assert_eq!(w.members().len(), 3);
        let new = ProcessId::from_raw(2);
        assert!(w.graph().has_edge(ProcessId::from_raw(0), new));
        assert!(w.graph().has_edge(new, ProcessId::from_raw(1)));
        assert!(!w.graph().has_edge(ProcessId::from_raw(0), ProcessId::from_raw(1)));
        assert_eq!(
            dds_net::algo::diameter(w.graph()),
            Some(2),
            "path stretched from 1 to 2"
        );
    }

    /// An [`Echo`] that opts into forking and fingerprinting.
    #[derive(Clone)]
    struct ForkEcho {
        received: u32,
    }

    impl Actor<u32> for ForkEcho {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
            self.received += 1;
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }

        fn fork(&self) -> Option<Box<dyn Actor<u32>>> {
            Some(Box::new(self.clone()))
        }

        fn fingerprint(&self, h: &mut StableHasher) -> bool {
            h.write_u32(self.received);
            true
        }
    }

    fn fork_echo_world(seed: u64) -> World<u32> {
        WorldBuilder::new(seed)
            .initial_graph(generate::ring(4))
            .spawn(|_| Box::new(ForkEcho { received: 0 }))
            .build()
    }

    #[test]
    fn fork_replays_identical_future_and_fingerprints_agree() {
        let fp = crate::snapshot::fingerprint_msg::<u32>;
        let mut w = fork_echo_world(11);
        w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 12);
        for _ in 0..4 {
            assert!(w.step());
        }
        let mut f = w.try_fork().expect("every component supports forking");
        assert_eq!(w.fingerprint(fp), f.fingerprint(fp));
        w.run_to_quiescence();
        f.run_to_quiescence();
        assert_eq!(w.fingerprint(fp), f.fingerprint(fp));
        assert_eq!(w.now(), f.now());
        assert_eq!(w.metrics().delivers, f.metrics().delivers);
        let a: &ForkEcho = w.actor(ProcessId::from_raw(0)).unwrap();
        let b: &ForkEcho = f.actor(ProcessId::from_raw(0)).unwrap();
        assert_eq!(a.received, b.received);
    }

    #[test]
    fn fork_is_independent_of_the_original() {
        let mut w = fork_echo_world(12);
        w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 6);
        let f = w.try_fork().unwrap();
        let pending_before = f.peek_time();
        w.run_to_quiescence();
        // The fork still holds its own pending event and zero deliveries.
        assert_eq!(f.peek_time(), pending_before);
        assert_eq!(f.metrics().delivers, 0);
        assert!(w.metrics().delivers > 0);
    }

    #[test]
    fn fork_does_not_alias_or_inherit_the_parent_sink() {
        let mut w: World<u32> = WorldBuilder::new(21)
            .initial_graph(generate::ring(4))
            .spawn(|_| Box::new(ForkEcho { received: 0 }))
            .sink(dds_obs::ObserverSink::new(16))
            .build();
        w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 8);
        for _ in 0..3 {
            assert!(w.step());
        }
        let mut f = w.try_fork().expect("forkable");
        // The fork starts unobserved: no sink, empty flight recorder/trace.
        assert!(f.take_sink().is_none(), "fork must not inherit the parent's sink");
        assert_eq!(f.trace().len(), 0, "fork trace starts empty");
        // Driving the fork must not feed the parent's observer.
        let parent_events_before = {
            let sink = w.sink.as_ref().expect("parent keeps its sink");
            let any: &dyn Any = &**sink;
            any.downcast_ref::<dds_obs::ObserverSink>().unwrap().report.events
        };
        f.run_to_quiescence();
        let obs = w
            .take_sink()
            .expect("parent keeps its sink")
            .into_any()
            .downcast::<dds_obs::ObserverSink>()
            .unwrap();
        assert_eq!(
            obs.report.events, parent_events_before,
            "fork dispatches leaked into the parent's observer"
        );
        // The fork's causal ids continue past the parent's prefix, so the
        // two never hand out overlapping ids.
        assert!(f.next_obs_id >= w.next_obs_id);
    }

    #[test]
    fn fingerprint_diverges_after_dispatch_and_gates_on_support() {
        let fp = crate::snapshot::fingerprint_msg::<u32>;
        let mut w = fork_echo_world(13);
        w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 3);
        let before = w.fingerprint(fp).expect("supported");
        assert_eq!(
            before,
            w.fingerprint(fp).unwrap(),
            "fingerprinting is read-only and stable"
        );
        assert!(w.step());
        assert_ne!(before, w.fingerprint(fp).unwrap());
        // `Echo` opts out of both hooks: no fingerprint, no fork.
        let e = echo_world(1);
        assert_eq!(e.fingerprint(fp), None);
        assert!(e.try_fork().is_none());
    }

    #[test]
    fn step_nth_zero_matches_default_dispatch_order() {
        let drive = |nth: bool| {
            let mut w = fork_echo_world(14);
            w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 9);
            w.inject(Time::from_ticks(1), ProcessId::from_raw(2), 4);
            if nth {
                let mut ready = Vec::new();
                while w.ready_set(&mut ready).is_some() {
                    assert!(!ready.is_empty());
                    assert!(w.step_nth(0));
                }
            } else {
                w.run_to_quiescence();
            }
            let fp = crate::snapshot::fingerprint_msg::<u32>;
            (w.fingerprint(fp).unwrap(), *w.metrics(), w.now())
        };
        assert_eq!(drive(false), drive(true));
    }

    /// An actor that leaves as soon as it receives any message.
    struct Quitter;

    impl Actor<u32> for Quitter {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, _: u32) {
            ctx.leave();
        }
    }

    #[test]
    fn actor_initiated_leave_departs_and_notifies() {
        let mut w: World<u32> = WorldBuilder::new(7)
            .initial_graph(generate::ring(4))
            .spawn(|_| Box::new(Quitter))
            .build();
        w.inject(Time::from_ticks(1), ProcessId::from_raw(2), 0);
        w.run_to_quiescence();
        assert_eq!(w.members().len(), 3);
        assert_eq!(w.metrics().leaves, 1);
        // The departed actor remains inspectable.
        assert!(w.actor::<Quitter>(ProcessId::from_raw(2)).is_some());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = echo_world(8);
        w.run_until(Time::from_ticks(50));
        assert_eq!(w.now(), Time::from_ticks(50));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn inject_into_the_past_panics() {
        let mut w = echo_world(9);
        w.run_until(Time::from_ticks(10));
        w.inject(Time::from_ticks(5), ProcessId::from_raw(0), 0);
    }

    /// Records the order message payloads arrive in.
    struct OrderLog {
        seen: Vec<u32>,
    }

    impl Actor<u32> for OrderLog {
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
            self.seen.push(msg);
        }
    }

    struct Reverse;
    impl crate::event::SchedulePolicy for Reverse {
        fn choose(
            &mut self,
            _: Time,
            _: u64,
            ready: &[crate::event::ReadySummary],
        ) -> usize {
            ready.len() - 1
        }
    }

    struct AlwaysFirst;
    impl crate::event::SchedulePolicy for AlwaysFirst {
        fn choose(&mut self, _: Time, _: u64, _: &[crate::event::ReadySummary]) -> usize {
            0
        }
    }

    fn order_run(policy: Option<Box<dyn crate::event::SchedulePolicy>>) -> Vec<u32> {
        let mut w: World<u32> = WorldBuilder::new(1)
            .initial_graph(generate::ring(3))
            .spawn(|_| Box::new(OrderLog { seen: Vec::new() }))
            .build();
        if let Some(p) = policy {
            w.schedule_policy = Some(p);
        }
        let p0 = ProcessId::from_raw(0);
        for msg in [10, 20, 30] {
            w.inject(Time::from_ticks(2), p0, msg);
        }
        w.run_to_quiescence();
        w.actor::<OrderLog>(p0).unwrap().seen.clone()
    }

    #[test]
    fn policy_reorders_same_instant_events_only() {
        assert_eq!(order_run(None), vec![10, 20, 30]);
        assert_eq!(
            order_run(Some(Box::new(AlwaysFirst))),
            vec![10, 20, 30],
            "index-0 policy must reproduce the default order"
        );
        assert_eq!(order_run(Some(Box::new(Reverse))), vec![30, 20, 10]);
    }

    /// A [`ForkEcho`] whose counter can be overwritten by the corruption
    /// adversary.
    #[derive(Clone)]
    struct CorruptibleEcho {
        received: u32,
    }

    impl Actor<u32> for CorruptibleEcho {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: ProcessId, msg: u32) {
            self.received += 1;
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }

        fn fork(&self) -> Option<Box<dyn Actor<u32>>> {
            Some(Box::new(self.clone()))
        }

        fn fingerprint(&self, h: &mut StableHasher) -> bool {
            h.write_u32(self.received);
            true
        }

        fn corrupt(&mut self, rng: &mut Rng) -> bool {
            self.received = rng.below(1 << 20) as u32;
            true
        }
    }

    #[test]
    fn corrupt_actor_flips_state_and_is_traced() {
        let p2 = ProcessId::from_raw(2);
        let mut w: World<u32> = WorldBuilder::new(31)
            .initial_graph(generate::ring(4))
            .driver(Scripted::new(vec![(
                Time::from_ticks(3),
                ChurnAction::CorruptActor(p2),
            )]))
            .spawn(|_| Box::new(CorruptibleEcho { received: 0 }))
            .build();
        let epoch_before = w.epoch();
        w.run_to_quiescence();
        assert_eq!(w.metrics().corruptions, 1);
        assert!(w.epoch() > epoch_before, "corruption bumps the epoch");
        let a: &CorruptibleEcho = w.actor(p2).unwrap();
        assert_ne!(a.received, 0, "state was overwritten (seed 31 draw is nonzero)");
        assert!(
            w.trace()
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Corrupt { pid, .. } if *pid == p2)),
            "the injection instant is traced"
        );
        // Membership is untouched: corruption is not a crash.
        assert_eq!(w.members().len(), 4);
    }

    #[test]
    fn corruption_is_a_noop_for_opted_out_actors() {
        let mut w: World<u32> = WorldBuilder::new(32)
            .initial_graph(generate::ring(4))
            .driver(Scripted::new(vec![
                (Time::from_ticks(3), ChurnAction::CorruptRandom),
                (Time::from_ticks(4), ChurnAction::ScrambleQueue),
            ]))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build();
        w.run_to_quiescence();
        assert_eq!(w.metrics().corruptions, 0, "Echo has no corrupt hook");
        assert!(w.trace().events().iter().all(|e| !matches!(e, TraceEvent::Corrupt { .. })));
    }

    #[test]
    fn scramble_queue_rewrites_pending_payloads() {
        let p0 = ProcessId::from_raw(0);
        let build = |scramble: bool| {
            let script = if scramble {
                vec![(Time::from_ticks(2), ChurnAction::ScrambleQueue)]
            } else {
                Vec::new()
            };
            let mut w: World<u32> = WorldBuilder::new(33)
                .initial_graph(generate::ring(3))
                .driver(Scripted::new(script))
                .spawn(|_| Box::new(OrderLog { seen: Vec::new() }))
                .corrupt_msg(|m, rng| *m = rng.below(1000) as u32)
                .build();
            // In flight across the scramble instant: delivery at t=5.
            w.inject(Time::from_ticks(5), p0, 424242);
            w.run_to_quiescence();
            (w.actor::<OrderLog>(p0).unwrap().seen.clone(), w.metrics().corruptions)
        };
        let (clean, zero) = build(false);
        assert_eq!(clean, vec![424242]);
        assert_eq!(zero, 0);
        let (scrambled, count) = build(true);
        assert_eq!(count, 1);
        assert_eq!(scrambled.len(), 1, "the schedule is preserved");
        assert_ne!(scrambled, clean, "the payload is not (seed 33 draw differs)");
    }

    #[test]
    fn corrupted_forks_stay_byte_identical() {
        let fp = crate::snapshot::fingerprint_msg::<u32>;
        let adversary = || {
            crate::corrupt::CorruptionAdversary::scripted(vec![(
                Time::from_ticks(4),
                crate::corrupt::Burst::actors(2).with_scramble(),
            )])
        };
        let mut w: World<u32> = WorldBuilder::new(34)
            .initial_graph(generate::ring(4))
            .driver(adversary())
            .spawn(|_| Box::new(CorruptibleEcho { received: 0 }))
            .corrupt_msg(|m, rng| *m = rng.below(1000) as u32)
            .build();
        w.inject(Time::from_ticks(1), ProcessId::from_raw(0), 30);
        for _ in 0..3 {
            assert!(w.step());
        }
        let mut f = w.try_fork().expect("adversary and actors fork");
        w.run_until(Time::from_ticks(40));
        f.run_until(Time::from_ticks(40));
        assert_eq!(w.fingerprint(fp), f.fingerprint(fp));
        assert_eq!(w.metrics().corruptions, f.metrics().corruptions);
        assert!(w.metrics().corruptions >= 2, "both actor flips landed");
    }

    #[test]
    fn epoch_counts_membership_and_topology_mutations() {
        let mut w: World<u32> = WorldBuilder::new(11)
            .initial_graph(generate::ring(4))
            .driver(Scripted::new(vec![
                (Time::from_ticks(2), ChurnAction::Join),
                (
                    Time::from_ticks(4),
                    ChurnAction::CutEdge(ProcessId::from_raw(0), ProcessId::from_raw(1)),
                ),
                (
                    Time::from_ticks(6),
                    ChurnAction::RestoreEdge(ProcessId::from_raw(0), ProcessId::from_raw(1)),
                ),
                (Time::from_ticks(8), ChurnAction::Leave(ProcessId::from_raw(2))),
            ]))
            .spawn(|_| Box::new(Echo { received: 0 }))
            .build();
        assert_eq!(w.epoch(), 0, "initial seating is epoch 0");
        w.run_until(Time::from_ticks(3));
        assert_eq!(w.epoch(), 1, "join bumps");
        w.run_until(Time::from_ticks(5));
        assert_eq!(w.epoch(), 2, "cut bumps");
        w.run_until(Time::from_ticks(9));
        assert_eq!(w.epoch(), 4, "restore and leave bump");
    }
}
