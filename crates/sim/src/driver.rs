//! Churn drivers: one per arrival model, plus the adversaries.
//!
//! A [`ChurnDriver`] is the source of membership change in a simulated run.
//! The kernel wakes it up at the instants it requests; it answers with
//! [`ChurnAction`]s (joins, leaves, crashes, edge splices) that the kernel
//! applies to the world. Each driver realizes one arrival model of
//! [`dds_core::arrival::ArrivalModel`]:
//!
//! - [`NoChurn`] — the static model `M^n`;
//! - [`BalancedChurn`] — infinite arrival with bounded concurrency
//!   (`M^∞_b`): the membership size is preserved, a fraction is replaced
//!   every window;
//! - [`Growth`] — unbounded concurrency (`M^∞`): the membership grows
//!   geometrically;
//! - [`PathStretch`] — the **constructive impossibility adversary** for the
//!   unbounded-diameter class: it keeps splicing fresh processes into the
//!   path between the initiator and a stable witness, so the witness's
//!   distance grows without bound while it stays present throughout —
//!   defeating any TTL/timeout a wave protocol commits to;
//! - [`Scripted`] — an explicit event list, for tests.

use std::fmt;

use dds_core::churn::ChurnSpec;
use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::{Time, TimeDelta};
use dds_net::algo::shortest_path;
use dds_net::graph::Graph;

use crate::snapshot::StableHasher;

/// One membership change requested by a driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnAction {
    /// A fresh process joins; the kernel wires it per the scenario's attach
    /// rule.
    Join,
    /// A uniformly random member leaves gracefully.
    LeaveRandom,
    /// The given member leaves gracefully (ignored if absent).
    Leave(ProcessId),
    /// A uniformly random member crashes.
    CrashRandom,
    /// The given member crashes (ignored if absent).
    Crash(ProcessId),
    /// A fresh process splices into the edge `{a, b}`: it joins with edges
    /// to both endpoints and the direct edge is removed — the stretching
    /// move of the unbounded-diameter adversary. Ignored if the edge no
    /// longer exists.
    InsertBetween(ProcessId, ProcessId),
    /// The knowledge edge `{a, b}` is severed (both endpoints get a
    /// neighbor-down notification). Ignored if absent.
    CutEdge(ProcessId, ProcessId),
    /// The knowledge edge `{a, b}` is (re)established (both endpoints get a
    /// neighbor-up notification). Ignored unless both endpoints are
    /// present, or if the edge already exists.
    RestoreEdge(ProcessId, ProcessId),
    /// The given member's local state is overwritten with arbitrary values
    /// drawn from the run RNG — the transient-fault model of
    /// self-stabilization. The process keeps running (unlike a crash).
    /// Ignored if the process is absent or its actor does not implement
    /// [`crate::actor::Actor::corrupt`].
    CorruptActor(ProcessId),
    /// A uniformly random member's state is corrupted (same semantics as
    /// [`ChurnAction::CorruptActor`]).
    CorruptRandom,
    /// Every pending message payload in the event queue is scrambled via
    /// the world's registered corruption hook
    /// (`WorldBuilder::corrupt_msg`), in canonical `(time, seq)` order so
    /// the result is identical across queue tiers. A no-op when no hook is
    /// registered.
    ScrambleQueue,
}

/// Declared intent of a driver, used to fill the `*_finite` flags of
/// [`dds_core::arrival::RunArrivalStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverIntent {
    /// The driver would generate only finitely many arrivals in an infinite
    /// run.
    pub arrivals_finite: bool,
    /// The driver keeps concurrency bounded.
    pub concurrency_finite: bool,
}

/// The source of membership change in a run.
pub trait ChurnDriver {
    /// The driver's declared intent.
    fn intent(&self) -> DriverIntent;

    /// The first instant at which the driver wants to act; `None` for a
    /// churn-free run.
    fn initial_wakeup(&self) -> Option<Time>;

    /// Called at each requested instant with a view of the current
    /// knowledge graph. Returns the actions to apply now and the next
    /// wakeup (or `None` to stop).
    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>);

    /// Deep-copies this driver for a forked world snapshot, or `None`
    /// when forking is unsupported (the default). Mirrors
    /// [`crate::actor::Actor::fork`]: the copy must carry all mutable
    /// scheduling state (cursors, wakeup bookkeeping).
    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        None
    }

    /// Absorbs the driver's mutable state into a world fingerprint,
    /// returning `true` when supported. Mirrors
    /// [`crate::actor::Actor::fingerprint`].
    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        let _ = h;
        false
    }
}

impl fmt::Debug for dyn ChurnDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChurnDriver(intent: {:?})", self.intent())
    }
}

/// The static model: no membership change, ever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoChurn;

impl ChurnDriver for NoChurn {
    fn intent(&self) -> DriverIntent {
        DriverIntent {
            arrivals_finite: true,
            concurrency_finite: true,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        None
    }

    fn on_tick(&mut self, _: Time, _: &Graph, _: &mut Rng) -> (Vec<ChurnAction>, Option<Time>) {
        (Vec::new(), None)
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        Some(Box::new(NoChurn))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u8(0); // stateless: a fixed tag distinguishes it from nothing
        true
    }
}

/// Balanced replacement churn (`M^∞_b`): every window, a
/// [`ChurnSpec`]-determined fraction of the membership leaves and as many
/// fresh processes join, keeping concurrency at its initial bound.
#[derive(Debug, Clone)]
pub struct BalancedChurn {
    spec: ChurnSpec,
    /// Fraction of departures that are crashes rather than graceful leaves.
    crash_fraction: f64,
    /// Processes churn never removes (e.g. the query initiator, whose
    /// presence defines the query interval).
    protected: std::collections::BTreeSet<ProcessId>,
}

impl BalancedChurn {
    /// Creates a driver from a churn specification; departures are graceful
    /// leaves.
    pub fn new(spec: ChurnSpec) -> Self {
        BalancedChurn {
            spec,
            crash_fraction: 0.0,
            protected: std::collections::BTreeSet::new(),
        }
    }

    /// Makes the given fraction of departures crashes instead of leaves.
    pub fn with_crash_fraction(mut self, fraction: f64) -> Self {
        self.crash_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Exempts a process from departures (the one-time-query
    /// specification is relative to an initiator that stays). May be
    /// called repeatedly to protect several processes.
    pub fn with_protected(mut self, pid: ProcessId) -> Self {
        self.protected.insert(pid);
        self
    }
}

impl ChurnDriver for BalancedChurn {
    fn intent(&self) -> DriverIntent {
        DriverIntent {
            arrivals_finite: self.spec.is_none(),
            concurrency_finite: true,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        if self.spec.is_none() {
            None
        } else {
            Some(Time::ZERO + self.spec.window())
        }
    }

    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let membership = graph.node_count();
        // Probabilistic rounding keeps the long-run rate exact even when
        // rate * membership is fractional.
        let exact = self.spec.churn_rate() * membership as f64;
        let mut k = exact.floor() as usize;
        if rng.chance(exact.fract()) {
            k += 1;
        }
        // Pick k distinct victims (excluding the protected process) so a
        // duplicate pick cannot unbalance joins against leaves.
        let mut victims: Vec<ProcessId> = graph
            .nodes()
            .filter(|p| !self.protected.contains(p))
            .collect();
        let take = k.min(victims.len());
        for i in 0..take {
            let j = i + rng.index(victims.len() - i);
            victims.swap(i, j);
        }
        victims.truncate(take);
        let mut actions = Vec::with_capacity(2 * take);
        for victim in victims {
            if rng.chance(self.crash_fraction) {
                actions.push(ChurnAction::Crash(victim));
            } else {
                actions.push(ChurnAction::Leave(victim));
            }
            actions.push(ChurnAction::Join);
        }
        (actions, Some(now + self.spec.window()))
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u8(2); // all state is immutable run configuration
        true
    }
}

/// Geometric growth (`M^∞`, unbounded concurrency): every window the
/// membership grows by the given factor.
#[derive(Debug, Clone, Copy)]
pub struct Growth {
    /// Multiplicative growth per window (e.g. `0.5` adds 50% per window).
    pub growth_per_window: f64,
    /// The window length.
    pub window: TimeDelta,
    /// Simulation-resource cap on the membership: joins stop once reached.
    /// The *model* is unbounded growth; the cap only bounds the finite
    /// prefix a simulation can afford. Use `usize::MAX` for no cap.
    pub cap: usize,
}

impl ChurnDriver for Growth {
    fn intent(&self) -> DriverIntent {
        DriverIntent {
            arrivals_finite: false,
            concurrency_finite: false,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        Some(Time::ZERO + self.window)
    }

    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let membership = graph.node_count();
        let exact = self.growth_per_window * membership as f64;
        let mut k = exact.floor() as usize;
        if rng.chance(exact.fract()) {
            k += 1;
        }
        k = k.min(self.cap.saturating_sub(membership));
        (vec![ChurnAction::Join; k], Some(now + self.window))
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        Some(Box::new(*self))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u8(3); // all state is immutable run configuration
        true
    }
}

/// The unbounded-diameter adversary: splices one fresh process per window
/// into the first edge of the path from `initiator` to `witness`, pushing
/// the witness one hop farther each time while both stay present — the
/// executable form of the C4 impossibility argument (experiment E5).
#[derive(Debug, Clone)]
pub struct PathStretch {
    /// The querying process whose wave must be outrun.
    pub initiator: ProcessId,
    /// The stable process the query is required to include.
    pub witness: ProcessId,
    /// How often a splice happens.
    pub window: TimeDelta,
}

impl ChurnDriver for PathStretch {
    fn intent(&self) -> DriverIntent {
        DriverIntent {
            arrivals_finite: false,
            // Concurrency grows by one per window: finite at any instant,
            // unbounded across the run — the M^∞_n regime.
            concurrency_finite: false,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        Some(Time::ZERO + self.window)
    }

    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        _rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let next = Some(now + self.window);
        match shortest_path(graph, self.initiator, self.witness) {
            Some(path) if path.len() >= 2 => (
                vec![ChurnAction::InsertBetween(path[0], path[1])],
                next,
            ),
            _ => (Vec::new(), next),
        }
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u8(4); // all state is immutable run configuration
        true
    }
}

/// Runs two drivers side by side — e.g. replacement churn *and* a
/// partition adversary in one run.
///
/// Each child keeps its own wakeup schedule: on a composite tick only the
/// children whose requested instant has arrived are ticked (a child is
/// never ticked early), and the composite's next wakeup is the earlier of
/// the children's. Actions apply in `(a, b)` order within one instant.
pub struct Compose {
    a: Box<dyn ChurnDriver>,
    b: Box<dyn ChurnDriver>,
    next_a: Option<Time>,
    next_b: Option<Time>,
}

impl Compose {
    /// Composes `a` and `b` (same-instant actions apply `a` first).
    pub fn new(a: impl ChurnDriver + 'static, b: impl ChurnDriver + 'static) -> Self {
        let (a, b) = (Box::new(a), Box::new(b));
        let (next_a, next_b) = (a.initial_wakeup(), b.initial_wakeup());
        Compose { a, b, next_a, next_b }
    }
}

fn earlier(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

impl ChurnDriver for Compose {
    fn intent(&self) -> DriverIntent {
        let (a, b) = (self.a.intent(), self.b.intent());
        DriverIntent {
            arrivals_finite: a.arrivals_finite && b.arrivals_finite,
            concurrency_finite: a.concurrency_finite && b.concurrency_finite,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        earlier(self.next_a, self.next_b)
    }

    fn on_tick(
        &mut self,
        now: Time,
        graph: &Graph,
        rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let mut actions = Vec::new();
        if self.next_a.is_some_and(|t| t <= now) {
            let (acts, next) = self.a.on_tick(now, graph, rng);
            actions.extend(acts);
            self.next_a = next;
        }
        if self.next_b.is_some_and(|t| t <= now) {
            let (acts, next) = self.b.on_tick(now, graph, rng);
            actions.extend(acts);
            self.next_b = next;
        }
        (actions, earlier(self.next_a, self.next_b))
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        let a = self.a.fork()?;
        let b = self.b.fork()?;
        Some(Box::new(Compose {
            a,
            b,
            next_a: self.next_a,
            next_b: self.next_b,
        }))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u8(5);
        for next in [self.next_a, self.next_b] {
            match next {
                Some(t) => {
                    h.write_bool(true);
                    h.write_u64(t.as_ticks());
                }
                None => h.write_bool(false),
            }
        }
        self.a.fingerprint(h) && self.b.fingerprint(h)
    }
}

/// A scripted driver: an explicit list of `(time, action)` pairs, applied
/// in order. The workhorse of deterministic tests.
#[derive(Debug, Clone, Default)]
pub struct Scripted {
    script: Vec<(Time, ChurnAction)>,
    cursor: usize,
}

impl Scripted {
    /// Creates a driver from a script.
    ///
    /// # Panics
    ///
    /// Panics if the script is not sorted by time.
    pub fn new(script: Vec<(Time, ChurnAction)>) -> Self {
        assert!(
            script.windows(2).all(|w| w[0].0 <= w[1].0),
            "script must be sorted by time"
        );
        Scripted { script, cursor: 0 }
    }
}

impl ChurnDriver for Scripted {
    fn intent(&self) -> DriverIntent {
        DriverIntent {
            arrivals_finite: true,
            concurrency_finite: true,
        }
    }

    fn initial_wakeup(&self) -> Option<Time> {
        self.script.first().map(|(t, _)| *t)
    }

    fn on_tick(
        &mut self,
        now: Time,
        _graph: &Graph,
        _rng: &mut Rng,
    ) -> (Vec<ChurnAction>, Option<Time>) {
        let mut actions = Vec::new();
        while self.cursor < self.script.len() && self.script[self.cursor].0 <= now {
            actions.push(self.script[self.cursor].1.clone());
            self.cursor += 1;
        }
        let next = self.script.get(self.cursor).map(|(t, _)| *t);
        (actions, next)
    }

    fn fork(&self) -> Option<Box<dyn ChurnDriver>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        // The script itself is run configuration (identical across forks
        // of one root); the cursor is the only mutable state.
        h.write_u8(1);
        h.write_usize(self.cursor);
        h.write_usize(self.script.len());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_net::generate;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    #[test]
    fn no_churn_never_wakes() {
        let d = NoChurn;
        assert_eq!(d.initial_wakeup(), None);
        assert!(d.intent().arrivals_finite);
    }

    #[test]
    fn balanced_churn_pairs_joins_and_leaves() {
        let spec = ChurnSpec::rate(0.25, TimeDelta::ticks(10)).unwrap();
        let mut d = BalancedChurn::new(spec);
        assert_eq!(d.initial_wakeup(), Some(t(10)));
        let g = generate::ring(8); // 8 members, 25% => exactly 2
        let mut rng = Rng::seeded(0);
        let (actions, next) = d.on_tick(t(10), &g, &mut rng);
        assert_eq!(next, Some(t(20)));
        assert_eq!(actions.len(), 4);
        let joins = actions.iter().filter(|a| **a == ChurnAction::Join).count();
        let leaves = actions
            .iter()
            .filter(|a| matches!(a, ChurnAction::Leave(_)))
            .count();
        assert_eq!(joins, 2);
        assert_eq!(leaves, 2);
        // Victims are distinct.
        let mut victims: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ChurnAction::Leave(p) => Some(*p),
                _ => None,
            })
            .collect();
        victims.dedup();
        assert_eq!(victims.len(), 2);
    }

    #[test]
    fn protected_process_is_never_a_victim() {
        let spec = ChurnSpec::rate(1.0, TimeDelta::ticks(5)).unwrap();
        let mut d = BalancedChurn::new(spec).with_protected(ProcessId::from_raw(0));
        let g = generate::ring(6);
        let mut rng = Rng::seeded(9);
        for tick in 1..20u64 {
            let (actions, _) = d.on_tick(t(tick * 5), &g, &mut rng);
            for a in &actions {
                if let ChurnAction::Leave(p) | ChurnAction::Crash(p) = a {
                    assert_ne!(*p, ProcessId::from_raw(0));
                }
            }
        }
    }

    #[test]
    fn balanced_churn_crash_fraction_one_crashes() {
        let spec = ChurnSpec::rate(0.5, TimeDelta::ticks(5)).unwrap();
        let mut d = BalancedChurn::new(spec).with_crash_fraction(1.0);
        let g = generate::ring(4);
        let mut rng = Rng::seeded(1);
        let (actions, _) = d.on_tick(t(5), &g, &mut rng);
        assert!(actions.iter().any(|a| matches!(a, ChurnAction::Crash(_))));
        assert!(!actions.iter().any(|a| matches!(a, ChurnAction::Leave(_))));
    }

    #[test]
    fn zero_rate_balanced_churn_is_static() {
        let d = BalancedChurn::new(ChurnSpec::none());
        assert_eq!(d.initial_wakeup(), None);
        assert!(d.intent().arrivals_finite);
    }

    #[test]
    fn growth_adds_members() {
        let mut d = Growth {
            growth_per_window: 1.0,
            window: TimeDelta::ticks(4),
            cap: usize::MAX,
        };
        assert!(!d.intent().concurrency_finite);
        let g = generate::ring(5);
        let mut rng = Rng::seeded(2);
        let (actions, next) = d.on_tick(t(4), &g, &mut rng);
        assert_eq!(actions.len(), 5); // doubles
        assert!(actions.iter().all(|a| *a == ChurnAction::Join));
        assert_eq!(next, Some(t(8)));
    }

    #[test]
    fn path_stretch_splices_first_edge() {
        let d_init = ProcessId::from_raw(0);
        let d_wit = ProcessId::from_raw(3);
        let mut d = PathStretch {
            initiator: d_init,
            witness: d_wit,
            window: TimeDelta::ticks(2),
        };
        let g = generate::path(4);
        let mut rng = Rng::seeded(3);
        let (actions, next) = d.on_tick(t(2), &g, &mut rng);
        assert_eq!(
            actions,
            vec![ChurnAction::InsertBetween(
                ProcessId::from_raw(0),
                ProcessId::from_raw(1)
            )]
        );
        assert_eq!(next, Some(t(4)));
    }

    #[test]
    fn path_stretch_without_path_is_idle() {
        let mut d = PathStretch {
            initiator: ProcessId::from_raw(0),
            witness: ProcessId::from_raw(99),
            window: TimeDelta::ticks(2),
        };
        let g = generate::path(2);
        let mut rng = Rng::seeded(4);
        let (actions, next) = d.on_tick(t(2), &g, &mut rng);
        assert!(actions.is_empty());
        assert!(next.is_some(), "keeps trying");
    }

    #[test]
    fn scripted_driver_replays_in_order() {
        let mut d = Scripted::new(vec![
            (t(1), ChurnAction::Join),
            (t(1), ChurnAction::Join),
            (t(5), ChurnAction::LeaveRandom),
        ]);
        assert_eq!(d.initial_wakeup(), Some(t(1)));
        let g = Graph::new();
        let mut rng = Rng::seeded(5);
        let (a1, n1) = d.on_tick(t(1), &g, &mut rng);
        assert_eq!(a1.len(), 2);
        assert_eq!(n1, Some(t(5)));
        let (a2, n2) = d.on_tick(t(5), &g, &mut rng);
        assert_eq!(a2, vec![ChurnAction::LeaveRandom]);
        assert_eq!(n2, None);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn scripted_rejects_unsorted() {
        Scripted::new(vec![(t(5), ChurnAction::Join), (t(1), ChurnAction::Join)]);
    }

    #[test]
    fn compose_ticks_each_child_only_when_due() {
        let a = Scripted::new(vec![(t(2), ChurnAction::Join)]);
        let b = Scripted::new(vec![
            (t(2), ChurnAction::LeaveRandom),
            (t(7), ChurnAction::Join),
        ]);
        let mut d = Compose::new(a, b);
        assert_eq!(d.initial_wakeup(), Some(t(2)));
        let g = Graph::new();
        let mut rng = Rng::seeded(6);
        // Both due at t=2: actions merge a-then-b.
        let (acts, next) = d.on_tick(t(2), &g, &mut rng);
        assert_eq!(acts, vec![ChurnAction::Join, ChurnAction::LeaveRandom]);
        assert_eq!(next, Some(t(7)));
        // Only b is due at t=7; a (exhausted) must not be re-ticked.
        let (acts, next) = d.on_tick(t(7), &g, &mut rng);
        assert_eq!(acts, vec![ChurnAction::Join]);
        assert_eq!(next, None);
    }

    #[test]
    fn compose_intent_is_conjunction() {
        let finite = Scripted::new(vec![(t(1), ChurnAction::Join)]);
        let unbounded = Growth {
            growth_per_window: 0.5,
            window: TimeDelta::ticks(4),
            cap: usize::MAX,
        };
        let d = Compose::new(finite, unbounded);
        let i = d.intent();
        assert!(!i.arrivals_finite);
        assert!(!i.concurrency_finite);
    }
}
