//! Property pins for churn accounting: `ChurnSpec::expected_replacements`
//! and the balanced driver's conservation law.
//!
//! The storage layer's timed-quorum sizing (`dds-store`) leans on two
//! facts proved here by property test rather than by inspection:
//!
//! - `expected_replacements` is exactly `floor(rate · membership)`,
//!   monotone in both arguments and never above the membership — the
//!   quantity the quorum-size recommendation takes a square root of;
//! - under `BalancedChurn` the kernel's books balance: every departure is
//!   paired with a join, so `joins − leaves − crashes` (joins include the
//!   initial seating) equals the live membership, which stays at its
//!   initial size, and the churn-join count per window stays within the
//!   probabilistic-rounding envelope `[floor(rate·n), floor(rate·n) + 1]`
//!   of the spec's expectation.

use dds_core::churn::ChurnSpec;
use dds_core::process::ProcessId;
use dds_core::time::{Time, TimeDelta};
use dds_net::generate;
use dds_sim::actor::{Actor, Context};
use dds_sim::driver::BalancedChurn;
use dds_sim::event::TimerId;
use dds_sim::world::WorldBuilder;
use proptest::prelude::*;

/// A silent resident: enough to seat processes, no traffic. Churn
/// accounting must hold independent of what the actors do.
struct Idle;

impl Actor<u64> for Idle {
    fn on_start(&mut self, _: &mut Context<'_, u64>) {}
    fn on_message(&mut self, _: &mut Context<'_, u64>, _: ProcessId, _: u64) {}
    fn on_timer(&mut self, _: &mut Context<'_, u64>, _: TimerId) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The spec's expectation is the exact floor, bounded by membership
    /// and monotone in rate and membership.
    #[test]
    fn expected_replacements_is_the_floor(
        rate in 0.0f64..1.0,
        n in 0usize..256,
    ) {
        let spec = ChurnSpec::rate(rate, TimeDelta::ticks(10)).unwrap();
        let expected = spec.expected_replacements(n);
        prop_assert_eq!(expected, (rate * n as f64).floor() as usize);
        prop_assert!(expected <= n);
        // Monotone in membership.
        prop_assert!(spec.expected_replacements(n + 1) >= expected);
        // Monotone in rate (guard against float edge at 1.0).
        if rate <= 0.9 {
            let faster = ChurnSpec::rate(rate + 0.1, TimeDelta::ticks(10)).unwrap();
            prop_assert!(faster.expected_replacements(n) >= expected);
        }
    }

    /// Balanced churn conserves: the metrics ledger reconciles with the
    /// live membership, the membership never drifts from its initial
    /// size, and total joins stay inside the probabilistic-rounding
    /// envelope of `windows · expected_replacements`.
    #[test]
    fn balanced_churn_conserves_membership(
        rate in 0.0f64..0.5,
        window in 3u64..12,
        n in 4usize..12,
        windows in 1u64..20,
        seed in any::<u64>(),
    ) {
        let spec = ChurnSpec::rate(rate, TimeDelta::ticks(window)).unwrap();
        let mut world = WorldBuilder::new(seed)
            .initial_graph(generate::complete(n))
            .driver(BalancedChurn::new(spec).with_crash_fraction(0.4))
            .spawn(|_| Box::new(Idle))
            .build();
        // Stop mid-window so exactly `windows` driver ticks have fired.
        world.run_until(Time::from_ticks(windows * window + window / 2));
        let m = world.metrics();
        let (joins, leaves, crashes) =
            (m.joins as usize, m.leaves as usize, m.crashes as usize);

        // Ledger identity: arrivals minus departures is what's left.
        // (`metrics.joins` counts the initial seating too — the paper's
        // infinite-arrival model treats initial members as arrivals.)
        prop_assert_eq!(joins - leaves - crashes, world.members().len());
        // Balanced: every churn departure was paired with a fresh join.
        let churn_joins = joins - n;
        prop_assert_eq!(churn_joins, leaves + crashes);
        prop_assert_eq!(world.members().len(), n);
        // Rounding envelope: each window replaces floor(rate·n) or one
        // more, never anything else.
        let per_window = spec.expected_replacements(n);
        let windows = windows as usize;
        prop_assert!(churn_joins >= windows * per_window,
            "{} churn joins under the floor {} over {} windows",
            churn_joins, windows * per_window, windows);
        prop_assert!(churn_joins <= windows * (per_window + 1),
            "{} churn joins over the envelope {} over {} windows",
            churn_joins, windows * (per_window + 1), windows);
    }
}
