//! Property test: the calendar queue and the legacy binary heap are
//! observationally identical.
//!
//! Both implementations must pop the exact same `(time, event)` sequence
//! for any schedule — that is the whole determinism argument for making
//! the calendar the default (`DDS_QUEUE` switches implementations, never
//! results). Random operation sequences exercise same-tick FIFO ties,
//! far-future schedules that land in the overflow heap, interleaved
//! schedule/pop traffic that slides the ring window, and draining.

use dds_core::process::ProcessId;
use dds_core::time::Time;
use dds_sim::event::{Event, EventQueue};
use proptest::prelude::*;

/// One step of a queue workload: schedule an event `delta` ticks from the
/// current virtual time, or pop the next event.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { delta: u64 },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Deltas cross the ring boundary (128) in both directions: 0..=20
    // models kernel traffic, the larger bands force overflow migration,
    // including ties deep in the far future. Repeated arms weight the
    // union (the vendored prop_oneof! has no weight syntax).
    prop_oneof![
        (0u64..21).prop_map(|delta| Op::Schedule { delta }),
        (0u64..21).prop_map(|delta| Op::Schedule { delta }),
        (120u64..141).prop_map(|delta| Op::Schedule { delta }),
        (300u64..2001).prop_map(|delta| Op::Schedule { delta }),
        Just(Op::Pop),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

/// Replays `ops` against one queue; returns every popped `(time, payload)`.
/// The payload is the schedule index, so FIFO tie order is observable.
fn replay(mut queue: EventQueue<u32>, ops: &[Op]) -> Vec<(Time, u32)> {
    let pid = ProcessId::from_raw(0);
    let mut now = Time::ZERO;
    let mut next_payload = 0u32;
    let mut popped = Vec::new();
    for &op in ops {
        match op {
            Op::Schedule { delta } => {
                let at = now + dds_core::time::TimeDelta::ticks(delta);
                queue.schedule(
                    at,
                    Event::Deliver { from: pid, to: pid, sent: now, cause: 0, msg: next_payload },
                );
                next_payload += 1;
            }
            Op::Pop => {
                if let Some((at, event)) = queue.pop() {
                    now = at; // the kernel's clock follows pops
                    let Event::Deliver { msg, .. } = event else {
                        panic!("only Deliver events were scheduled");
                    };
                    popped.push((at, msg));
                }
            }
        }
    }
    // Drain whatever is left so the tail order is compared too.
    while let Some((at, event)) = queue.pop() {
        let Event::Deliver { msg, .. } = event else {
            panic!("only Deliver events were scheduled");
        };
        popped.push((at, msg));
    }
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Calendar and heap pop identical sequences for arbitrary workloads.
    #[test]
    fn calendar_and_heap_pop_identically(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let calendar = replay(EventQueue::calendar(), &ops);
        let heap = replay(EventQueue::heap(), &ops);
        prop_assert_eq!(&calendar, &heap);
        // And the shared contract: times never decrease, equal times keep
        // schedule (seq) order — FIFO ties.
        for pair in calendar.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "pop order went backwards");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "same-tick events out of schedule order");
            }
        }
    }

    /// A cleared queue replays like a fresh one (the `World::reset` path).
    #[test]
    fn cleared_calendar_replays_like_fresh(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let fresh = replay(EventQueue::calendar(), &ops);
        let mut reused: EventQueue<u32> = EventQueue::calendar();
        for i in 0..50u64 {
            reused.schedule(Time::from_ticks(i * 7 % 300), Event::ChurnTick);
        }
        reused.pop();
        reused.clear();
        prop_assert_eq!(replay(reused, &ops), fresh);
    }
}
