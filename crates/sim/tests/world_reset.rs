//! Regression pin: a reused (reset) `World` reproduces a freshly built
//! world's run exactly — same trace, same metrics, same membership, same
//! final clock. This is the invariant that lets sweeps recycle one world's
//! allocations across every seed of a cell without perturbing results.

use dds_core::churn::ChurnSpec;
use dds_core::process::ProcessId;
use dds_core::time::{Time, TimeDelta};
use dds_net::generate;
use dds_sim::actor::{Actor, Context};
use dds_sim::delay::{DelayModel, LossModel};
use dds_sim::driver::BalancedChurn;
use dds_sim::event::TimerId;
use dds_sim::world::{ResetSpec, TopologyPolicy, World, WorldBuilder};

/// Gossips a counter to a random neighbor on a short timer — enough
/// traffic to exercise the queue, RNG, timer and churn paths.
struct Chatter {
    heard: u64,
}

impl Actor<u64> for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(TimeDelta::ticks(2));
    }

    fn on_message(&mut self, _: &mut Context<'_, u64>, _: ProcessId, msg: u64) {
        self.heard += msg;
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _: TimerId) {
        if let Some(peer) = ctx.choose_neighbor() {
            ctx.send(peer, 1);
        }
        ctx.set_timer(TimeDelta::ticks(2));
    }
}

fn driver() -> BalancedChurn {
    let spec = ChurnSpec::rate(0.2, TimeDelta::ticks(7)).expect("valid churn spec");
    BalancedChurn::new(spec)
}

fn fresh_world(seed: u64) -> World<u64> {
    WorldBuilder::new(seed)
        .initial_graph(generate::ring(8))
        .driver(driver())
        .delay(DelayModel::Uniform {
            min: TimeDelta::ticks(1),
            max: TimeDelta::ticks(3),
        })
        .values(|pid, rng| pid.as_raw() as f64 + rng.unit_f64())
        .spawn(|_| Box::new(Chatter { heard: 0 }))
        .build()
}

/// Everything observable about a finished run.
fn snapshot(world: &mut World<u64>) -> (String, String, Vec<ProcessId>, Time) {
    world.run_until(Time::from_ticks(150));
    (
        format!("{:?}", world.trace().events()),
        format!("{:?}", world.metrics()),
        world.members().to_vec(),
        world.now(),
    )
}

#[test]
fn reset_world_reproduces_fresh_world_run_for_run() {
    let mut reused = fresh_world(1);
    let first = snapshot(&mut reused);
    assert_eq!(first, snapshot(&mut fresh_world(1)), "fresh baseline is deterministic");

    // Reset across several seeds: each must match a fresh build bit for bit,
    // including going *back* to an already-run seed.
    for seed in [2, 7, 1] {
        reused.reset(
            &generate::ring(8),
            ResetSpec {
                seed,
                policy: TopologyPolicy::default(),
                delay: DelayModel::Uniform {
                    min: TimeDelta::ticks(1),
                    max: TimeDelta::ticks(3),
                },
                loss: LossModel::None,
                driver: Box::new(driver()),
                sink: None,
            },
        );
        assert_eq!(
            snapshot(&mut reused),
            snapshot(&mut fresh_world(seed)),
            "reset world diverged from fresh world at seed {seed}"
        );
    }
}
