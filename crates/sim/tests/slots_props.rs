//! Property tests for the dense kernel tables (`dds_sim::slots`) against
//! naive `BTreeMap`/`BTreeSet` models.
//!
//! The driver only generates kernel-legal sequences: identities come from
//! a monotone counter (never reused — the paper's infinite-arrival model),
//! departures and checkouts only target present identities. Under those
//! sequences the dense tables must be observationally equal to the model,
//! a departed identity must never look present again, and `clear` must
//! keep the backing capacity (what `World::reset` relies on).

use std::collections::{BTreeMap, BTreeSet};

use dds_core::process::ProcessId;
use dds_sim::slots::{DenseMap, DenseSet, SlotTable};
use proptest::prelude::*;

fn pid(n: u64) -> ProcessId {
    ProcessId::from_raw(n)
}

/// One scripted step against a `SlotTable`: the discriminant picks the
/// operation, `pick` selects among the currently present identities.
#[derive(Clone, Copy, Debug)]
enum TableOp {
    /// Seat a fresh identity from the monotone counter.
    InsertFresh,
    /// Depart the `pick`-th present identity (no-op when empty).
    Depart(usize),
    /// Check out the `pick`-th present identity and seat it back with a
    /// bumped value — the kernel's dispatch pattern.
    TakeReinsert(usize),
}

fn table_op() -> impl Strategy<Value = TableOp> {
    prop_oneof![
        Just(TableOp::InsertFresh),
        (0usize..8).prop_map(TableOp::Depart),
        (0usize..8).prop_map(TableOp::TakeReinsert),
    ]
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum ModelState {
    Present(u32),
    Departed(u32),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random legal lifecycles: the table agrees with a `BTreeMap` model on
    /// every identity ever allocated, and departed identities stay dead.
    #[test]
    fn slot_table_matches_model(ops in proptest::collection::vec(table_op(), 0..40)) {
        let mut table: SlotTable<u32> = SlotTable::new();
        let mut model: BTreeMap<u64, ModelState> = BTreeMap::new();
        let mut next_id = 0u64;
        let mut ever_departed: BTreeSet<u64> = BTreeSet::new();

        for op in ops {
            let present: Vec<u64> = model
                .iter()
                .filter_map(|(&id, s)| matches!(s, ModelState::Present(_)).then_some(id))
                .collect();
            match op {
                TableOp::InsertFresh => {
                    let id = next_id;
                    next_id += 1;
                    prop_assert!(
                        !ever_departed.contains(&id),
                        "monotone counter re-issued a departed identity"
                    );
                    table.insert(pid(id), id as u32);
                    model.insert(id, ModelState::Present(id as u32));
                }
                TableOp::Depart(pick) if !present.is_empty() => {
                    let id = present[pick % present.len()];
                    prop_assert!(table.depart(pid(id)));
                    let ModelState::Present(v) = model[&id] else { unreachable!() };
                    model.insert(id, ModelState::Departed(v));
                    ever_departed.insert(id);
                }
                TableOp::TakeReinsert(pick) if !present.is_empty() => {
                    let id = present[pick % present.len()];
                    let v = table.take(pid(id));
                    prop_assert_eq!(v, Some(match model[&id] {
                        ModelState::Present(v) => v,
                        ModelState::Departed(_) => unreachable!(),
                    }));
                    // Mid-checkout the slot reads vacant, like mid-dispatch.
                    prop_assert!(!table.contains(pid(id)));
                    let bumped = v.unwrap().wrapping_add(1);
                    table.insert(pid(id), bumped);
                    model.insert(id, ModelState::Present(bumped));
                }
                TableOp::Depart(_) | TableOp::TakeReinsert(_) => {}
            }

            // Observational equality over the whole identity space so far.
            let model_present = model
                .values()
                .filter(|s| matches!(s, ModelState::Present(_)))
                .count();
            prop_assert_eq!(table.len(), model_present);
            prop_assert_eq!(table.is_empty(), model_present == 0);
            for id in 0..next_id {
                match model.get(&id) {
                    Some(ModelState::Present(v)) => {
                        prop_assert!(table.contains(pid(id)));
                        prop_assert_eq!(table.get(pid(id)), Some(v));
                        prop_assert_eq!(table.get_any(pid(id)), Some(v));
                    }
                    Some(ModelState::Departed(v)) => {
                        prop_assert!(!table.contains(pid(id)), "departed identity resurrected");
                        prop_assert_eq!(table.get(pid(id)), None);
                        prop_assert_eq!(table.get_any(pid(id)), Some(v));
                    }
                    None => {
                        prop_assert!(!table.contains(pid(id)));
                        prop_assert_eq!(table.get_any(pid(id)), None);
                    }
                }
            }
        }
    }

    /// `DenseMap` insert/get/iter agree with a `BTreeMap` model; iteration
    /// yields identity order.
    #[test]
    fn dense_map_matches_model(
        entries in proptest::collection::vec((0u64..48, 0u64..1000), 0..40),
    ) {
        let mut map: DenseMap<u64> = DenseMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (id, v) in entries {
            map.insert(pid(id), v);
            model.insert(id, v);
            let got: Vec<(u64, u64)> = map.iter().map(|(p, &v)| (p.as_raw(), v)).collect();
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, want);
        }
        for id in 0..48 {
            prop_assert_eq!(map.get(pid(id)), model.get(&id));
        }
    }

    /// `DenseSet` membership, cardinality, iteration order, subset and
    /// union agree with a `BTreeSet` model (ids span word boundaries).
    #[test]
    fn dense_set_matches_model(
        xs in proptest::collection::vec(0u64..200, 0..40),
        ys in proptest::collection::vec(0u64..200, 0..40),
    ) {
        let mut a = DenseSet::new();
        let mut ma: BTreeSet<u64> = BTreeSet::new();
        for id in &xs {
            prop_assert_eq!(a.insert(pid(*id)), ma.insert(*id));
        }
        let mut b = DenseSet::new();
        let mut mb: BTreeSet<u64> = BTreeSet::new();
        for id in &ys {
            b.insert(pid(*id));
            mb.insert(*id);
        }

        prop_assert_eq!(a.len(), ma.len());
        prop_assert_eq!(a.is_empty(), ma.is_empty());
        let got: Vec<u64> = a.iter().map(|p| p.as_raw()).collect();
        let want: Vec<u64> = ma.iter().copied().collect();
        prop_assert_eq!(got, want);
        for id in 0..200 {
            prop_assert_eq!(a.contains(pid(id)), ma.contains(&id));
        }
        prop_assert_eq!(a.is_subset(&b), ma.is_subset(&mb));
        prop_assert_eq!(b.is_subset(&a), mb.is_subset(&ma));

        a.union_with(&b);
        let merged: BTreeSet<u64> = ma.union(&mb).copied().collect();
        let got: Vec<u64> = a.iter().map(|p| p.as_raw()).collect();
        let want: Vec<u64> = merged.iter().copied().collect();
        prop_assert_eq!(got, want);
        prop_assert!(b.is_subset(&a));
    }

    /// `clear` empties every table but keeps the backing capacity.
    #[test]
    fn clear_keeps_capacity(n in 1u64..64) {
        let mut table: SlotTable<u64> = SlotTable::new();
        let mut map: DenseMap<u64> = DenseMap::new();
        let mut set = DenseSet::new();
        for id in 0..n {
            table.insert(pid(id), id);
            map.insert(pid(id), id);
            set.insert(pid(id * 3)); // spread across words
        }
        let (ct, cm, cs) = (table.capacity(), map.capacity(), set.capacity());
        prop_assert!(ct >= n as usize && cm >= n as usize && cs >= 1);

        table.clear();
        map.clear();
        set.clear();
        prop_assert!(table.is_empty() && set.is_empty());
        prop_assert_eq!(map.iter().count(), 0);
        prop_assert_eq!(table.capacity(), ct);
        prop_assert_eq!(map.capacity(), cm);
        prop_assert_eq!(set.capacity(), cs);
    }
}
