//! The observability hooks must be free when unused.
//!
//! `World::emit` is one `Option` branch per kernel event; with no sink
//! installed the dispatch loop must stay on the same allocation-free fast
//! path it had before instrumentation. This test pins that with a counting
//! global allocator: after a warm-up phase (buffers reach steady capacity),
//! a window of thousands of timer dispatches must perform **zero**
//! allocations.
//!
//! The file holds exactly one `#[test]` on purpose: the allocator count is
//! process-global, and a sibling test running concurrently would pollute
//! the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dds_core::process::ProcessId;
use dds_core::time::{Time, TimeDelta};
use dds_net::generate;
use dds_sim::actor::{Actor, Context};
use dds_sim::event::TimerId;
use dds_sim::world::WorldBuilder;

/// Passes everything through to the system allocator, counting every
/// allocation and reallocation (deallocations are free to ignore: a
/// steady-state loop that frees must also have allocated).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Re-arms a one-tick timer forever: each dispatch pops one event and
/// schedules one, so every kernel buffer (calendar bucket ring, callback
/// queue, effect buffer) holds a steady size. Timer events also record no trace
/// entry, so the trace vector cannot amortize-grow inside the window.
struct Metronome;

impl Actor<()> for Metronome {
    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.set_timer(TimeDelta::ticks(1));
    }

    fn on_message(&mut self, _: &mut Context<'_, ()>, _: ProcessId, _: ()) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _: TimerId) {
        ctx.set_timer(TimeDelta::ticks(1));
    }
}

#[test]
fn dispatch_without_sink_allocates_nothing() {
    let mut world = WorldBuilder::new(11)
        .initial_graph(generate::ring(8))
        .spawn(|_| Box::new(Metronome))
        .build();
    // Warm up: let every buffer reach its steady capacity. Must exceed one
    // full revolution of the calendar queue's bucket ring so every per-tick
    // bucket has grown to hold the ring's worth of timers.
    world.run_until(Time::from_ticks(300));

    // The allocator count is process-global, so rare ambient allocations
    // (test-harness threads, lazy runtime initialization) can land inside
    // a window. A real kernel regression allocates in *every* window —
    // the dispatch loop is deterministic — so measuring several windows
    // and requiring one clean window keeps the pin exact while shedding
    // the noise.
    let mut cleanest = u64::MAX;
    for window in 0..3u64 {
        let fires_before = world.metrics().timer_fires;
        let start = Time::from_ticks(300 + window * 1000);
        let before = ALLOCS.load(Ordering::SeqCst);
        world.run_until(start + TimeDelta::ticks(1000));
        let after = ALLOCS.load(Ordering::SeqCst);
        let fired = world.metrics().timer_fires - fires_before;
        assert_eq!(fired, 8 * 1000, "window actually dispatched timer events");
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
    }
    assert_eq!(
        cleanest, 0,
        "sink-less dispatch loop allocated in every one of 3 windows \
         (best window: {cleanest} allocations over 8000 dispatches)"
    );
}
