//! An actor panic must flush the flight recorder before the unwind
//! destroys the world (and the sink with it).
//!
//! `World::run_callback` catches the unwind, hands the reason to the
//! installed sink's `fail` hook, and re-raises. With a
//! [`FlightRecorder`] configured with a dump path, the events leading up
//! to the panic land on disk even though the process is going down.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dds_core::process::ProcessId;
use dds_core::time::Time;
use dds_net::generate;
use dds_obs::FlightRecorder;
use dds_sim::actor::{Actor, Context};
use dds_sim::world::WorldBuilder;

/// Forwards the countdown around the ring, then blows up at zero.
struct Bomb;

impl Actor<u32> for Bomb {
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
        if msg == 0 {
            panic!("boom");
        }
        let next = ProcessId::from_raw((ctx.pid().as_raw() + 1) % 4);
        ctx.send(next, msg - 1);
    }
}

#[test]
fn panic_inside_callback_writes_the_dump_file() {
    let path =
        std::env::temp_dir().join(format!("dds-panic-dump-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut world = WorldBuilder::new(13)
        .initial_graph(generate::ring(4))
        .spawn(|_| Box::new(Bomb))
        .sink(FlightRecorder::new(64).with_dump_path(&path))
        .build();
    world.inject(Time::from_ticks(1), ProcessId::from_raw(0), 6);

    // Silence the default panic hook for the expected unwind.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let caught = catch_unwind(AssertUnwindSafe(|| world.run_to_quiescence()));
    std::panic::set_hook(hook);
    assert!(caught.is_err(), "the actor panic propagates");

    let dump = std::fs::read_to_string(&path).expect("dump file written during unwind");
    let lines: Vec<&str> = dump.lines().collect();
    assert!(
        lines[0].contains("\"t\":\"flight-dump\"") && lines[0].contains("panicked"),
        "header names the panicking actor: {}",
        lines[0]
    );
    // The countdown hops p0→p1→p2→p3→p0→p1→p2(msg 0): the ring holds the
    // joins, the relayed sends and their deliveries.
    assert!(
        lines.iter().any(|l| l.contains("\"t\":\"send\"")),
        "recent sends survive in the ring"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"t\":\"deliver\"")),
        "recent deliveries survive in the ring"
    );
    let _ = std::fs::remove_file(&path);
}
