//! Property pins for the corruption adversary: determinism and the
//! zero-damage identity.
//!
//! The self-stabilization experiments lean on two facts proved here by
//! property test rather than by inspection:
//!
//! - corruption draws **only** from the run's seeded RNG: two worlds
//!   built from the same seed and spec produce byte-identical corrupted
//!   state (full world fingerprints equal), so every stabilization
//!   measurement replays exactly;
//! - a burst that names no actors, scrambles nothing and cuts no edges is
//!   a *behavioral* no-op: attaching the adversary changes neither actor
//!   state nor the kernel's books compared to the same world with no
//!   driver at all.

use dds_core::process::ProcessId;
use dds_core::rng::Rng;
use dds_core::time::{Time, TimeDelta};
use dds_net::generate;
use dds_sim::actor::{Actor, Context};
use dds_sim::corrupt::{Burst, CorruptionAdversary};
use dds_sim::event::TimerId;
use dds_sim::snapshot::StableHasher;
use dds_sim::world::{World, WorldBuilder};
use proptest::prelude::*;

/// A chatty resident whose state mixes everything it hears, so any
/// difference in corruption draws cascades into visibly different bytes.
#[derive(Clone)]
struct Noisy {
    state: u64,
}

impl Actor<u64> for Noisy {
    fn fork(&self) -> Option<Box<dyn Actor<u64>>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StableHasher) -> bool {
        h.write_u64(self.state);
        true
    }

    fn corrupt(&mut self, rng: &mut Rng) -> bool {
        self.state = rng.below(1 << 32);
        true
    }

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.state = ctx.pid().as_raw().wrapping_mul(0x9e37_79b9);
        ctx.set_timer(TimeDelta::TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _: TimerId) {
        self.state = self
            .state
            .wrapping_mul(31)
            .wrapping_add(ctx.now().as_ticks());
        ctx.broadcast(self.state);
        ctx.set_timer(TimeDelta::TICK);
    }

    fn on_message(&mut self, _: &mut Context<'_, u64>, _: ProcessId, msg: u64) {
        self.state ^= msg.rotate_left(7);
    }
}

fn scramble(msg: &mut u64, rng: &mut Rng) {
    *msg = rng.below(1 << 16);
}

fn corrupted_world(seed: u64, burst: Burst) -> World<u64> {
    WorldBuilder::new(seed)
        .initial_graph(generate::ring(5))
        .driver(CorruptionAdversary::periodic(
            Time::from_ticks(4),
            TimeDelta::ticks(6),
            burst,
        ))
        .corrupt_msg(scramble)
        .spawn(|_| Box::new(Noisy { state: 0 }))
        .build()
}

/// The behavioral content of a finished run: every actor's bytes in pid
/// order. Deliberately excludes the driver and kernel RNG, which a
/// passive adversary legitimately carries without affecting behavior.
fn actor_states(world: &World<u64>) -> Vec<(u64, u64)> {
    world
        .members()
        .iter()
        .map(|&p| (p.as_raw(), world.actor::<Noisy>(p).expect("resident").state))
        .collect()
}

fn msg_fp(msg: &u64, h: &mut StableHasher) {
    h.write_u64(*msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same spec ⇒ byte-identical corrupted state: the
    /// adversary's damage is a pure function of the run RNG, with no
    /// ambient entropy anywhere in the path. Full world fingerprints
    /// (actors, queue, rng, driver cursor) must collide, and corruption
    /// must actually have been injected for the claim to have teeth.
    #[test]
    fn same_seed_reproduces_the_corrupted_bytes(seed in 0u64..1024) {
        let burst = Burst::actors(2).with_scramble().with_edge_cuts(1);
        let mut a = corrupted_world(seed, burst);
        let mut b = corrupted_world(seed, burst);
        let deadline = Time::from_ticks(60);
        a.run_until(deadline);
        b.run_until(deadline);
        prop_assert!(a.metrics().corruptions > 0, "burst must land");
        prop_assert_eq!(a.metrics(), b.metrics());
        prop_assert_eq!(actor_states(&a), actor_states(&b));
        let fa = a.fingerprint(msg_fp);
        prop_assert!(fa.is_some(), "every resident opts into fingerprinting");
        prop_assert_eq!(fa, b.fingerprint(msg_fp));
    }

    /// An all-zero burst is a behavioral no-op: the adversary wakes,
    /// finds nothing to damage, and the run is indistinguishable — same
    /// actor bytes, same kernel books, zero corruptions — from the same
    /// world with no driver installed at all.
    #[test]
    fn zero_burst_is_a_behavioral_no_op(seed in 0u64..1024) {
        let mut plain: World<u64> = WorldBuilder::new(seed)
            .initial_graph(generate::ring(5))
            .spawn(|_| Box::new(Noisy { state: 0 }))
            .build();
        let mut armed = corrupted_world(seed, Burst::default());
        let deadline = Time::from_ticks(60);
        plain.run_until(deadline);
        armed.run_until(deadline);
        prop_assert_eq!(armed.metrics().corruptions, 0);
        prop_assert_eq!(plain.metrics(), armed.metrics());
        prop_assert_eq!(actor_states(&plain), actor_states(&armed));
    }
}
