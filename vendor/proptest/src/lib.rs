//! Offline stand-in for `proptest`.
//!
//! A functional miniature of the proptest API surface this workspace uses:
//! strategies over ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `option::of`, `any::<T>()`, and the `proptest!` /
//! `prop_assert*` macros. Properties really are exercised against many
//! pseudo-random inputs; what is missing relative to real proptest is input
//! shrinking (a failing case is reported as-is) and persistence of failure
//! seeds. Generation is deterministic per test name, so failures reproduce.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Object-safe on purpose so `prop_oneof!` can box heterogeneous arms.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy producing always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union from boxed arms.
        ///
        /// # Panics
        ///
        /// Panics when no arm is given.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`: a fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// Full-domain strategy for an unsigned integer type.
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize);

    /// The canonical strategy for `T` — proptest's `any::<T>()`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for vectors with a size drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy yielding `None` about a quarter of the time (matching
    /// proptest's default 0.75 `Some` probability closely enough for the
    /// workspace's membership-script generators).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

pub mod test_runner {
    use std::fmt;

    /// Why a property case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion inside the property body failed.
        Fail(String),
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// The result type of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration accepted via `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator behind all strategies (SplitMix64).
    ///
    /// Seeded from the test name so each property gets an independent but
    /// reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test identifier.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state }
        }

        /// The next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current property case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case when the two sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current property case when the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skips the current case when the assumption does not hold.
///
/// Real proptest retries with a fresh input; this stand-in just counts the
/// case as passed, which keeps properties sound (never a false failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::strategy::Strategy<Value = _>>),+])
    };
}

/// Declares property tests: each `fn` runs its body against many random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    (@cases $n:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $n;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::test_runner::ProptestConfig::default().cases; $($rest)*);
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..5, z in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u64), (10u64..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (20u64..40).contains(&v));
        }

        #[test]
        fn options_produce_both_variants(opts in crate::collection::vec(crate::option::of(0u64..5), 32..33)) {
            prop_assert!(opts.iter().any(Option::is_some));
        }
    }

    #[test]
    fn deterministic_streams_reproduce() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
