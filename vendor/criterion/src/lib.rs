//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! over a simple adaptive wall-clock loop: calibrate the per-iteration
//! cost, then run enough iterations to fill a measurement window and
//! report mean time per iteration. No statistics, plots, or baselines;
//! numbers print to stdout in a `name ... time/iter` format.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement window per benchmark (after one calibration pass).
const TARGET: Duration = Duration::from_millis(300);

/// Re-export matching criterion's convenience export.
pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: one calibration call, then enough iterations to
    /// fill the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let calib = Instant::now();
        black_box(routine());
        let once = calib.elapsed().max(Duration::from_nanos(1));
        let n = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iters = n;
        self.ns_per_iter = total.as_nanos() as f64 / n as f64;
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    println!("{name:<58} {human:>12}/iter  ({} iters)", b.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Runs one stand-alone benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&id.to_string(), &b);
        self
    }
}

/// Declares a group runner invoking each bench function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(41u64) + 1);
        assert!(b.ns_per_iter > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
