//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on plain data types — no serializer backend (e.g. `serde_json`) is a
//! dependency, so no code ever calls the generated impls. These derives
//! therefore expand to nothing, which keeps the derive attributes
//! compiling in an offline build environment.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
