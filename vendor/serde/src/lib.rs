//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types for
//! future trace export, but no serializer backend is wired in, so the
//! trait impls are never exercised. This crate provides the two trait
//! names and re-exports no-op derive macros so the annotations compile
//! without network access to crates.io.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
