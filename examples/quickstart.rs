//! Quickstart: one one-time query over a small dynamic system.
//!
//! Builds a 16-node torus overlay, runs the wave (flood/echo) protocol
//! once with no churn and once under balanced churn, and prints the
//! specification verdict for both.
//!
//! Run with: `cargo run --example quickstart`

use dds::net::generate;
use dds::protocols::{DriverSpec, ProtocolKind, QueryScenario};

fn main() {
    // A static 4x4 torus: diameter 4, so a TTL of 4 suffices; we use 8 for
    // slack. Values are the node indices, the query counts the members.
    let scenario = QueryScenario::new(generate::torus(4, 4), ProtocolKind::FloodEcho { ttl: 8 });
    let run = scenario.run();
    println!("static system : {run}");

    // The same query under balanced churn (10% of the membership replaced
    // every 10 ticks). The initiator stays; everyone else may be replaced.
    let mut churny = scenario.clone();
    churny.driver = DriverSpec::Balanced {
        rate: 0.10,
        window: 10,
        crash_fraction: 0.2,
    };
    churny.seed = 7;
    let run = churny.run();
    println!("under churn   : {run}");

    println!();
    println!("interval validity means: every process present throughout the");
    println!("query interval was counted, and nobody absent from it was.");
}
