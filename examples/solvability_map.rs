//! The solvability map: the paper's central table, printed from code.
//!
//! For each named system class C1–C7, prints the analytical verdict of
//! `dds_core::solvability::one_time_query` next to an empirical probe: the
//! wave protocol run in a simulated instance of that class.
//!
//! Run with: `cargo run --release --example solvability_map`

use dds::core::class::SystemClass;
use dds::core::solvability::one_time_query;
use dds::core::time::Time;
use dds::net::generate;
use dds::protocols::harness::success_rate;
use dds::protocols::{DriverSpec, ProtocolKind, QueryScenario};
use dds::sim::delay::DelayModel;
use dds_core::time::TimeDelta;

/// Builds the empirical probe scenario for a named class.
fn probe(name: &str) -> Option<QueryScenario> {
    let torus = generate::torus(4, 4); // diameter 4
    let mut s = QueryScenario::new(torus, ProtocolKind::FloodEcho { ttl: 8 });
    s.deadline = Time::from_ticks(2_000);
    match name {
        "C1" => {}
        "C2" => {
            // Finite arrival: a brief join wave early on, then stability.
            s.driver = DriverSpec::Growth { per_window: 0.1, window: 2, cap: 64 };
            s.deadline = Time::from_ticks(60);
        }
        "C3" => {
            s.driver = DriverSpec::Balanced { rate: 0.05, window: 10, crash_fraction: 0.2 };
        }
        "C4" => {
            // Unbounded diameter: the path-stretch adversary on a line.
            s = QueryScenario::new(generate::path(6), ProtocolKind::FloodEcho { ttl: 5 });
            s.driver = DriverSpec::PathStretch { window: 1 };
            s.deadline = Time::from_ticks(400);
        }
        "C5" => {
            // Unbounded concurrency with adversarial (chain) attachment:
            // by query time the stable tail is beyond any TTL.
            s.driver = DriverSpec::Growth { per_window: 0.2, window: 4, cap: 600 };
            s.policy = dds::sim::world::TopologyPolicy {
                attach: dds::net::dynamic::AttachRule::Chain,
                repair: dds::net::dynamic::RepairRule::BridgeNeighbors,
            };
            s.start = Time::from_ticks(80);
            s.deadline = Time::from_ticks(400);
        }
        "C6" => {
            // Asynchrony: unbounded delays make every timeout wrong
            // sometimes.
            // Delays routinely exceed whatever bound the protocol guesses:
            // its timeouts fire while echoes are still in flight.
            s.delay = DelayModel::Exponential { mean_ticks: 15.0 };
            s.driver = DriverSpec::Balanced { rate: 0.05, window: 10, crash_fraction: 0.2 };
        }
        "C7" => {
            // Partitionable: no repair, heavy crash churn severs the stable
            // part.
            // A ring with crash churn and no repair: a couple of crashes
            // partition the stable part for good.
            s = QueryScenario::new(generate::ring(16), ProtocolKind::FloodEcho { ttl: 8 });
            s.deadline = Time::from_ticks(2_000);
            s.policy = dds::sim::world::TopologyPolicy {
                attach: dds::net::dynamic::AttachRule::RandomK(1),
                repair: dds::net::dynamic::RepairRule::None,
            };
            s.driver = DriverSpec::Balanced { rate: 0.25, window: 5, crash_fraction: 1.0 };
        }
        _ => return None,
    }
    Some(s)
}

fn main() {
    // Make C6's timing visible in the class display.
    let _ = TimeDelta::TICK;
    println!(
        "{:<4} {:<34} {:>18} {:>18}",
        "id", "analytical verdict", "empirical validity", "empirical term."
    );
    for (name, class) in SystemClass::named_landscape() {
        let verdict = one_time_query(&class);
        let (validity, termination) = match probe(name) {
            Some(scenario) => {
                let row = success_rate(&scenario, 0..15);
                (
                    format!("{:.0}%", row.validity_rate() * 100.0),
                    format!("{:.0}%", row.termination_rate() * 100.0),
                )
            }
            None => ("-".into(), "-".into()),
        };
        let verdict_short = if verdict.is_solvable() {
            "solvable"
        } else {
            "UNSOLVABLE"
        };
        println!("{name:<4} {verdict_short:<34} {validity:>18} {termination:>18}");
    }
    println!();
    println!("solvable classes should probe near 100% validity; unsolvable");
    println!("ones visibly below (the adversary defeats the wave protocol).");
}
