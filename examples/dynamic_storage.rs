//! Dynamic storage: a read/write register service that survives churn.
//!
//! Runs the `dds-store` timed-quorum service on a 12-node complete graph
//! at increasing churn rates, then replays one churned run in detail,
//! printing every epoch transition the reconfiguration engine committed
//! and the p99 operation latency.
//!
//! The qualitative claim on display is the paper's liveness frontier:
//! below the sustainable churn bound (quorum refresh outpaces
//! replacement) every operation completes and every history is atomic;
//! above it the engine aborts operations explicitly instead of hanging.
//!
//! Run with: `cargo run --release --example dynamic_storage`

use dds::core::churn::ChurnSpec;
use dds::core::spec::register::check_atomic;
use dds::core::time::{Time, TimeDelta};
use dds::net::generate;
use dds::store::StoreScenario;

fn scenario(rate: f64, seed: u64) -> StoreScenario {
    let mut s = StoreScenario::new(generate::complete(12), seed);
    s.deadline = Time::from_ticks(900);
    s.ops_per_client = 10;
    if rate > 0.0 {
        s.churn = ChurnSpec::rate(rate, TimeDelta::ticks(40)).expect("valid churn spec");
    }
    s
}

fn main() {
    const SEEDS: u64 = 10;
    let rates = [0.0, 0.02, 0.05, 0.1, 0.3, 0.8];

    println!("timed-quorum storage, 12-node complete graph, {SEEDS} seeds per rate\n");
    println!(
        "{:<10} {:>6} {:>10} {:>8} {:>7} {:>8} {:>12}",
        "churn", "bound", "completed", "aborted", "epochs", "p99(t)", "atomic runs"
    );
    for rate in rates {
        let mut completed = 0u64;
        let mut aborted = 0u64;
        let mut max_epoch = 0u64;
        let mut atomic = 0u64;
        let mut above = false;
        let mut latency = dds::obs::Histogram::new();
        for seed in 0..SEEDS {
            let report = scenario(rate, seed).run();
            completed += report.completed;
            aborted += report.aborted;
            max_epoch = max_epoch.max(report.max_epoch);
            above = report.above_bound;
            if check_atomic(&report.history).is_ok_and(|l| l.is_linearizable()) {
                atomic += 1;
            }
            latency.merge(&report.latency);
        }
        println!(
            "{:<10} {:>6} {:>10} {:>8} {:>7} {:>8} {:>9}/{:<2}",
            format!("{:.0}%/40t", rate * 100.0),
            if above { "above" } else { "below" },
            completed,
            aborted,
            max_epoch,
            latency.percentile(0.99),
            atomic,
            SEEDS,
        );
    }

    // One churned run in detail: watch the reconfiguration engine walk
    // the configuration through epochs as replicas leave and join.
    let report = scenario(0.05, 7).run();
    println!("\none run at 5%/40t churn (seed 7): epoch transitions");
    for (at, epoch) in &report.epoch_transitions {
        println!("  t={:>4}  adopted epoch {epoch}", at.as_ticks());
    }
    println!(
        "\n{} ops completed, {} aborted, {} reconfigurations, {} migrations",
        report.completed, report.aborted, report.reconfigs, report.migrations
    );
    println!(
        "op latency: p50 {} ticks, p99 {} ticks; history atomic: {}",
        report.latency.percentile(0.5),
        report.latency.percentile(0.99),
        check_atomic(&report.history).is_ok_and(|l| l.is_linearizable()),
    );
}
