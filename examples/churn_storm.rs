//! Churn storm: sweep churn rates across the protocol family.
//!
//! Reproduces the core qualitative claim of the paper's solvability
//! analysis: with bounded churn, bounded diameter and synchrony, the
//! timeout-driven wave keeps interval validity; as churn grows, validity
//! erodes — and the baselines (single tree, gossip) trade it away in
//! different ways.
//!
//! Run with: `cargo run --release --example churn_storm`

use dds::core::spec::aggregate::AggregateKind;
use dds::core::time::Time;
use dds::net::generate;
use dds::protocols::harness::success_rate;
use dds::protocols::{DriverSpec, ProtocolKind, QueryScenario};

fn main() {
    let graph = generate::torus(5, 5); // 25 nodes, diameter 4
    let protocols = [
        ProtocolKind::FloodEcho { ttl: 8 },
        ProtocolKind::SingleTree { ttl: 8 },
        ProtocolKind::MultiTree { ttl: 8, k: 4 },
        ProtocolKind::Gossip { rounds: 80 },
    ];
    let rates = [0.0, 0.05, 0.10, 0.20, 0.40];

    println!("interval-validity / termination / mean relative error, 20 seeds each\n");
    print!("{:>24}", "churn per 10 ticks:");
    for r in rates {
        print!(" | {:>20}", format!("{:.0}%", r * 100.0));
    }
    println!();

    for protocol in protocols {
        print!("{:>24}", protocol.to_string());
        for rate in rates {
            let mut s = QueryScenario::new(graph.clone(), protocol);
            s.aggregate = AggregateKind::Sum;
            s.deadline = Time::from_ticks(3_000);
            if rate > 0.0 {
                s.driver = DriverSpec::Balanced {
                    rate,
                    window: 10,
                    crash_fraction: 0.3,
                };
            }
            let row = success_rate(&s, 0..20);
            print!(
                " | {:>5.0}%/{:>4.0}%/{:>6.2}",
                row.validity_rate() * 100.0,
                row.termination_rate() * 100.0,
                row.mean_relative_error
            );
        }
        println!();
    }

    println!();
    println!("expected shape: flood-echo holds validity longest and always");
    println!("terminates; single-tree sheds subtrees; multi-tree buys some");
    println!("coverage back; gossip always terminates but only approximates.");
}
