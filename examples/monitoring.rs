//! Continuous monitoring: the one-time query re-issued over a churning
//! system.
//!
//! Issues 20 queries, one every 40 ticks, against a 16-node torus overlay
//! under crash churn, with and without overlay repair — the extension
//! experiment E9 in miniature.
//!
//! Run with: `cargo run --release --example monitoring`

use dds::core::time::{Time, TimeDelta};
use dds::net::generate;
use dds::protocols::continuous::ContinuousScenario;
use dds::protocols::{DriverSpec, ProtocolKind, QueryScenario};

fn scenario(repaired: bool) -> ContinuousScenario {
    let mut base = QueryScenario::new(generate::torus(4, 4), ProtocolKind::FloodEcho { ttl: 8 });
    base.deadline = Time::from_ticks(100_000);
    base.driver = DriverSpec::Balanced {
        rate: 0.2,
        window: 10,
        crash_fraction: 1.0,
    };
    if !repaired {
        base.policy = dds::sim::world::TopologyPolicy {
            attach: dds::net::dynamic::AttachRule::RandomK(2),
            repair: dds::net::dynamic::RepairRule::None,
        };
    }
    ContinuousScenario::new(base, TimeDelta::ticks(40), 20)
}

fn main() {
    for (name, repaired) in [("bridging repair", true), ("no repair", false)] {
        let run = scenario(repaired).run();
        println!("{name:>16}: {run}");
        print!("{:>16}  per query: ", "");
        for q in &run.per_query {
            print!(
                "{}",
                if q.report.level.is_interval_valid() { 'Y' } else { '.' }
            );
        }
        println!();
    }
    println!();
    println!("with repair every query succeeds; without it the overlay");
    println!("fragments under crash churn and monitoring collapses.");
}
