//! Sensor-field aggregation: the motivating scenario for neighborhood
//! knowledge.
//!
//! A field of temperature sensors is deployed uniformly at random; two
//! sensors know each other iff they are within radio range — a random
//! geometric knowledge graph. A sink node queries the *average*
//! temperature. Sensors fail (crash) during the query; we compare the wave
//! protocol against push-sum gossip on the same field.
//!
//! Run with: `cargo run --example sensor_aggregation`

use dds::core::rng::Rng;
use dds::core::spec::aggregate::AggregateKind;
use dds::core::time::Time;
use dds::net::{algo, generate};
use dds::protocols::{DriverSpec, ProtocolKind, QueryScenario};

fn main() {
    let mut rng = Rng::seeded(2026);
    // Deploy until we get a connected field (sparse geometric graphs can
    // fragment; a real deployment would add relays).
    let field = loop {
        let g = generate::random_geometric(60, 0.22, &mut rng);
        if algo::is_connected(&g) {
            break g;
        }
    };
    let diameter = algo::diameter(&field).expect("connected");
    println!(
        "sensor field: {} sensors, {} links, diameter {}",
        field.node_count(),
        field.edge_count(),
        diameter
    );

    let mut scenario = QueryScenario::new(
        field,
        ProtocolKind::FloodEcho {
            ttl: diameter as u32 + 2,
        },
    );
    scenario.aggregate = AggregateKind::Average;
    scenario.deadline = Time::from_ticks(5_000);
    // Sensors die (crash, never gracefully) at 2% per 20 ticks.
    scenario.driver = DriverSpec::Balanced {
        rate: 0.02,
        window: 20,
        crash_fraction: 1.0,
    };

    let wave = scenario.run();
    println!("\nwave query   : {wave}");
    println!("  true average over stable sensors: {:.2}", wave.truth_over_required);

    let mut gossip_scenario = scenario.clone();
    gossip_scenario.protocol = ProtocolKind::Gossip { rounds: 120 };
    gossip_scenario.aggregate = AggregateKind::Sum; // push-sum estimates sums
    let gossip = gossip_scenario.run();
    println!("gossip query : {gossip}");
    println!(
        "  sum estimate relative error: {:.1}%",
        gossip.relative_error * 100.0
    );

    println!();
    println!("the wave gives an explicit contributor set (checkable validity);");
    println!("gossip gives a numeric estimate that degrades gracefully instead.");
}
