//! Reliable objects from unreliable ones: register self-implementations.
//!
//! Demonstrates the Guerraoui–Raynal constructions: a reliable atomic
//! register from `t+1` responsive-crash base registers and from `2t+1`
//! nonresponsive-crash base registers, with crashes injected mid-run and
//! the resulting histories checked for linearizability. Also shows the
//! consensus construction and its nonresponsive impossibility.
//!
//! Run with: `cargo run --example reliable_register`

use std::collections::BTreeMap;

use dds::core::spec::consensus::check_consensus;
use dds::core::spec::register::{check_atomic, RegOp};
use dds::registers::base::ObjectState;
use dds::registers::consensus::run_consensus;
use dds::registers::harness::{run_schedule, CrashEvent};
use dds::registers::Construction;

fn main() {
    let scripts = vec![
        vec![RegOp::Write(10), RegOp::Write(20), RegOp::Write(30)],
        vec![RegOp::Read; 4],
        vec![RegOp::Read; 4],
    ];

    // t+1 responsive-crash construction, t = 2, two base crashes injected.
    let out = run_schedule(
        Construction::ResponsiveAll { write_back: true },
        2,
        &scripts,
        &[
            CrashEvent { step: 6, index: 0, state: ObjectState::CrashedResponsive },
            CrashEvent { step: 14, index: 2, state: ObjectState::CrashedResponsive },
        ],
        2026,
    );
    println!("responsive t+1 construction (t=2, 2 crashes):");
    println!("{}", out.history);
    println!("  linearizable: {}", check_atomic(&out.history).unwrap());

    // 2t+1 nonresponsive-crash construction, t = 1, one silent crash.
    let out = run_schedule(
        Construction::MajorityQuorum { write_back: true },
        1,
        &scripts,
        &[CrashEvent { step: 9, index: 1, state: ObjectState::CrashedNonresponsive }],
        2026,
    );
    println!("\nmajority 2t+1 construction (t=1, 1 nonresponsive crash):");
    println!("{}", out.history);
    println!("  linearizable: {}", check_atomic(&out.history).unwrap());

    // Consensus from t+1 responsive-crash consensus objects.
    let (run, blocked, bank) = run_consensus(
        2,
        &[7, 8, 9],
        &BTreeMap::from([(0, ObjectState::CrashedResponsive)]),
        2026,
    );
    println!("\nconsensus from t+1 responsive-crash objects (t=2, 1 crash):");
    println!("  decisions: {:?}", run.decisions.values().collect::<Vec<_>>());
    println!("  {} | {} base accesses", check_consensus(&run), bank.total_accesses());
    assert!(blocked.is_empty());

    // The impossibility: one nonresponsive crash blocks the construction.
    let (run, blocked, _) = run_consensus(
        2,
        &[7, 8, 9],
        &BTreeMap::from([(0, ObjectState::CrashedNonresponsive)]),
        2026,
    );
    println!("\nsame, but the crash is NONRESPONSIVE:");
    println!("  blocked processes: {blocked:?}");
    println!("  {}", check_consensus(&run));
    println!("  (termination fails — consensus cannot be self-implemented");
    println!("   from nonresponsive-crash consensus objects)");
}
